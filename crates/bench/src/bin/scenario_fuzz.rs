//! The **scenario fuzz gate**: runs the seeded scenario × composition
//! fuzzer ([`nakamoto_sim::fuzz::ScenarioFuzzer`]) for a case budget
//! and fails loudly — with a runnable spec-format repro written next
//! to the binary — when any engine invariant (thread-count
//! bit-identity, pruning-liveness, prefix monotonicity) breaks on a
//! generated case.
//!
//! ```text
//! cargo run --release -p consistency_bench --bin scenario_fuzz -- \
//!     [--budget N] [--seed S | --seed-from-env] [--out PATH] [--replay repro.toml]
//! ```
//!
//! * `--budget N` — number of generated cases (default 2000).
//! * `--seed S` — master seed (default a fixed constant, so plain runs
//!   are reproducible).
//! * `--seed-from-env` — take the seed from `SCENARIO_FUZZ_SEED`, or
//!   `GITHUB_RUN_ID` as a fallback (how CI gets fresh coverage every
//!   run while keeping the failing seed in the job log and repro).
//! * `--out PATH` — where to write the failing case's repro spec
//!   (default `scenario_fuzz_failure.toml`).
//! * `--replay PATH` — load a saved repro through the experiment-spec
//!   parser and re-run the failing case's invariants: the scenario is
//!   rebuilt from the document body, cross-checked against the
//!   `[fuzz]` replay coordinates when present, and re-checked.
//!
//! Budgets and expected runtime: see EXPERIMENTS.md.

use consistency_bench::cli;
use nakamoto_sim::fuzz::{check_scenario, sample_scenario_for, ScenarioFuzzer};
use nakamoto_sim::spec::ExperimentSpec;

/// Fixed default seed for reproducible local runs.
const DEFAULT_SEED: u64 = 0x5CE7_F022_5EED;

const USAGE: &str =
    "scenario_fuzz [--budget N] [--seed S | --seed-from-env] [--out PATH] [--replay repro.toml]";

/// Re-runs a saved repro: parse the spec, rebuild the scenario, check
/// every invariant again. Exits non-zero if the case still fails.
fn replay(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spec = ExperimentSpec::parse(&source).map_err(|e| format!("{path}: {e}"))?;
    let scenario = spec.scenario().map_err(|e| format!("{path}: {e}"))?;
    consistency_bench::section(&format!(
        "Scenario fuzz replay: {path} ({} phases, {} rounds)",
        scenario.phases().len(),
        scenario.total_rounds()
    ));
    if let Some(fuzz) = &spec.fuzz {
        println!(
            "replay coordinates: master_seed = {:#x}, case = {}, recorded invariant = `{}`",
            fuzz.master_seed, fuzz.case, fuzz.invariant
        );
        // The repro must actually be the case it claims to be: the
        // generator stream for (master_seed, case) regenerates the
        // document's scenario.
        let regenerated = sample_scenario_for(fuzz.master_seed, fuzz.case);
        if regenerated == scenario {
            println!("coordinates verified: the spec matches the generated case");
        } else {
            println!("note: the spec differs from the generated case (edited repro?); checking the spec's scenario");
        }
    }
    match check_scenario(&scenario) {
        Ok(()) => {
            println!("PASS: every invariant holds on the replayed case");
            Ok(())
        }
        Err((invariant, detail)) => {
            eprintln!("FAIL: replayed case still violates `{invariant}`: {detail}");
            std::process::exit(1);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = cli::Args::parse(
        USAGE,
        0,
        &["--budget", "--seed", "--seed-from-env", "--out", "--replay"],
    )?;
    if let Some(path) = &args.replay {
        return replay(path);
    }
    let budget = args.budget.unwrap_or(2_000);
    let seed = if args.seed_from_env {
        cli::seed_from_env(DEFAULT_SEED)
    } else {
        args.seed.unwrap_or(DEFAULT_SEED)
    };
    let out_path = args
        .out
        .unwrap_or_else(|| String::from("scenario_fuzz_failure.toml"));

    consistency_bench::section(&format!(
        "Scenario fuzz: {budget} random scenario × composition cases, master seed {seed:#x}"
    ));
    let started = std::time::Instant::now();
    match ScenarioFuzzer::new(seed).run(budget) {
        Ok(stats) => {
            println!(
                "PASS: {} cases ({} with composed phases), {} phases, {} scenario rounds \
                 per execution in {:.2} s",
                stats.cases,
                stats.composed_cases,
                stats.phases,
                stats.rounds,
                started.elapsed().as_secs_f64(),
            );
            println!("Invariants held: thread-count bit-identity, pruning-liveness, prefix monotonicity.");
            Ok(())
        }
        Err(failure) => {
            let repro = failure.repro_toml();
            std::fs::write(&out_path, &repro)?;
            eprintln!("FAIL: {failure}");
            eprintln!("repro written to {out_path}:\n{repro}");
            eprintln!(
                "replay: scenario_fuzz --replay {out_path}, or nakamoto_sim::fuzz::run_case({}, {})",
                failure.master_seed, failure.case
            );
            std::process::exit(1);
        }
    }
}
