//! **Extension experiment**: the catch-up race behind the attack lines —
//! Nakamoto-style confirmation tables computed closed-form, cross-
//! validated on an absorbing Markov chain, and measured against the
//! private-chain attack in the simulator.
//!
//! `cargo run --release -p consistency-bench --bin catchup_table [rounds]`

use consistency_core::catchup;
use nakamoto_sim::adversary::PrivateChainAdversary;
use nakamoto_sim::config::SimConfig;
use nakamoto_sim::execution::run_simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = consistency_bench::cli::Args::parse("catchup_table [rounds]", 1, &[])?;
    let rounds = args.pos_u64(0)?.unwrap_or(300_000);

    consistency_bench::section("Catch-up probability: closed form vs absorbing-chain solver");
    println!("{:>6} {:>4} {:>16} {:>16}", "q", "z", "closed", "markov");
    for &q in &[0.1, 0.3, 0.45] {
        for &z in &[1u32, 3, 6, 10] {
            println!(
                "{q:>6} {z:>4} {:>16.6e} {:>16.6e}",
                catchup::catchup_probability(q, z)?,
                catchup::catchup_probability_markov(q, z, z + 100)?,
            );
        }
    }

    consistency_bench::section("Reorg-depth distribution under the private-chain attack");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>16}",
        "ν", "reorgs", "max depth", "mean depth*", "geometric ref"
    );
    for &nu in &[0.15, 0.25, 0.35, 0.45] {
        let cfg = SimConfig::from_c(100, 4, 1.0, nu, 9_999)?;
        let report = run_simulation(cfg, Box::new(PrivateChainAdversary::new(4)), rounds);
        // Geometric reference: P[depth ≥ z] ≈ (ν/µ)^{z−1}; mean ≈ 1/(1−ν/µ).
        let ratio = nu / (1.0 - nu);
        let mean_ref = 1.0 / (1.0 - ratio);
        // The tracker only exposes max depth; report count and max with
        // the per-reorg mean proxy C/A-style (blocks discarded per reorg).
        let mean_proxy = if report.reorg_count > 0 {
            // Lower bound on the mean from honest blocks not on chain.
            (report
                .honest_blocks
                .saturating_sub(report.chain_honest_blocks)) as f64
                / report.reorg_count as f64
        } else {
            0.0
        };
        println!(
            "{:>6} {:>10} {:>12} {:>12.2} {:>16.2}",
            nu, report.reorg_count, report.max_reorg_depth, mean_proxy, mean_ref
        );
    }
    println!("(*discarded-honest-blocks per reorg, a proxy for mean reorg depth)");
    Ok(())
}
