//! Validates **Inequalities 19/20/47/49**: the exponential-in-T decay
//! of the lower tail of `C` and the upper tail of `A`, compared against
//! the analytic Chernoff bounds (Chung-et-al. for the Markov chain with
//! a stationary start, Arratia–Gordon for the binomial).
//!
//! Tail probabilities are estimated over parallel Monte-Carlo trials
//! (disjoint RNG streams, thread-count-independent results) and shown
//! with 95% Wilson intervals.
//!
//! `cargo run --release -p consistency_bench --bin concentration [trials]`
//!
//! Budgets and expected runtime: see EXPERIMENTS.md.

use consistency_core::extended_chain;
use consistency_core::params::ProtocolParams;
use consistency_core::theorem1;
use nakamoto_sim::adversary::ImmediateReleaseAdversary;
use nakamoto_sim::config::SimConfig;
use nakamoto_sim::montecarlo::{TrialPlan, WilsonInterval};
use probability::chernoff::adversary_tail_bound;

/// Tail frequency with a Wilson interval from per-trial counts.
fn tail_freq(counts: &[u64], hit: impl Fn(u64) -> bool) -> (u64, WilsonInterval) {
    let hits = counts.iter().filter(|&&c| hit(c)).count() as u64;
    (hits, WilsonInterval::new(hits, counts.len() as u64, 1.96))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = consistency_bench::cli::Args::parse("concentration [trials]", 1, &[])?;
    let trials = args.pos_u64(0)?.unwrap_or(400);
    let params = ProtocolParams::new(100, 2, 1e-3, 0.2)?;
    let delta2 = 0.05; // lower-tail slack for C
    let delta3 = 0.05; // upper-tail slack for A

    // One trial fan-out per horizon serves both tails: the per-trial C
    // and A counts come back in the aggregate.
    // `trials` comes from argv: a zero value surfaces as a tidy
    // ConfigError from plan construction, not a panic.
    let runs: Vec<_> = [2_000u64, 8_000, 32_000, 128_000]
        .into_iter()
        .map(|t| {
            let cfg: SimConfig = params.to_sim_config(1_000_000 + t);
            let run = TrialPlan::new(cfg, t, trials)?.run(|_| ImmediateReleaseAdversary::new());
            Ok::<_, nakamoto_sim::config::ConfigError>((t, run))
        })
        .collect::<Result<_, _>>()?;

    consistency_bench::section(&format!(
        "Ineq. 19/47: P[C ≤ (1−δ₂)E[C]] with δ₂ = {delta2}, decay in T ({trials} trials)"
    ));
    println!(
        "{:>9} {:>12} {:>11} {:>22} {:>14} {:>22}",
        "T", "E[C]", "empirical", "95% Wilson CI", "ln(empirical)", "ln(bnd, φ=π start)"
    );
    for (t, run) in &runs {
        let expected = theorem1::expected_convergence_opportunities(&params, *t);
        let threshold = (1.0 - delta2) * expected;
        let (hits, wilson) =
            tail_freq(&run.aggregate.convergence_counts, |c| c as f64 <= threshold);
        let analytic =
            extended_chain::walk_bound_params(&params, *t, 1.0)?.ln_lower_tail(delta2)?;
        println!(
            "{:>9} {:>12.1} {:>11} {:>22} {:>14} {:>22.3}",
            t,
            expected,
            format!("{hits}/{trials}"),
            consistency_bench::table::ci_bracket(&wilson, 3),
            if wilson.estimate > 0.0 {
                format!("{:.2}", wilson.estimate.ln())
            } else {
                "-inf".into()
            },
            analytic,
        );
    }

    consistency_bench::section(&format!(
        "Ineq. 20/49: P[A ≥ (1+δ₃)E[A]] with δ₃ = {delta3} vs Arratia–Gordon ({trials} trials)"
    ));
    println!(
        "{:>9} {:>12} {:>11} {:>22} {:>14} {:>22}",
        "T", "E[A]", "empirical", "95% Wilson CI", "ln(empirical)", "ln(analytic bnd)"
    );
    for (t, run) in &runs {
        let expected = theorem1::expected_adversary_blocks(&params, *t);
        let threshold = (1.0 + delta3) * expected;
        let (hits, wilson) = tail_freq(&run.aggregate.adversary_counts, |a| a as f64 >= threshold);
        let t_nu_n = t * params.to_sim_config(0).n_adversary();
        let analytic = adversary_tail_bound(t_nu_n, params.p(), delta3)?;
        println!(
            "{:>9} {:>12.1} {:>11} {:>22} {:>14} {:>22.3}",
            t,
            expected,
            format!("{hits}/{trials}"),
            consistency_bench::table::ci_bracket(&wilson, 3),
            if wilson.estimate > 0.0 {
                format!("{:.2}", wilson.estimate.ln())
            } else {
                "-inf".into()
            },
            analytic.ln(),
        );
    }
    println!("\nExpected shape: empirical frequencies fall roughly exponentially in T");
    println!("and always sit below the analytic bounds (which are loose but valid;");
    println!("the Chung-et-al. constant 72 dominates at these scales).");
    Ok(())
}
