//! Validates **Inequalities 19/20/47/49**: the exponential-in-T decay
//! of the lower tail of `C` and the upper tail of `A`, compared against
//! the analytic Chernoff bounds (Chung-et-al. for the Markov chain with
//! a stationary start, Arratia–Gordon for the binomial).
//!
//! `cargo run --release -p consistency-bench --bin concentration [trials]`

use consistency_core::extended_chain;
use consistency_core::params::ProtocolParams;
use consistency_core::theorem1;
use nakamoto_sim::adversary::ImmediateReleaseAdversary;
use nakamoto_sim::execution::run_simulation;
use probability::chernoff::adversary_tail_bound;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(400);
    let params = ProtocolParams::new(100, 2, 1e-3, 0.2)?;
    let delta2 = 0.05; // lower-tail slack for C
    let delta3 = 0.05; // upper-tail slack for A

    consistency_bench::section(&format!(
        "Ineq. 19/47: P[C ≤ (1−δ₂)E[C]] with δ₂ = {delta2}, decay in T"
    ));
    println!(
        "{:>9} {:>12} {:>14} {:>14} {:>22}",
        "T", "E[C]", "empirical", "ln(empirical)", "ln(bnd, φ=π start)"
    );
    for &t in &[2_000u64, 8_000, 32_000, 128_000] {
        let expected = theorem1::expected_convergence_opportunities(&params, t);
        let threshold = (1.0 - delta2) * expected;
        let mut hits = 0u64;
        for trial in 0..trials {
            let cfg = params.to_sim_config(1_000_000 + trial);
            let report = run_simulation(cfg, Box::new(ImmediateReleaseAdversary::new()), t);
            if (report.convergence_opportunities as f64) <= threshold {
                hits += 1;
            }
        }
        let emp = hits as f64 / trials as f64;
        // Stationary-start Chung-et-al. bound (‖φ‖_π = 1).
        let analytic = extended_chain::walk_bound_params(&params, t, 1.0)?.ln_lower_tail(delta2)?;
        println!(
            "{:>9} {:>12.1} {:>14} {:>14} {:>22.3}",
            t,
            expected,
            format!("{hits}/{trials}"),
            if emp > 0.0 {
                format!("{:.2}", emp.ln())
            } else {
                "-inf".into()
            },
            analytic,
        );
    }

    consistency_bench::section(&format!(
        "Ineq. 20/49: P[A ≥ (1+δ₃)E[A]] with δ₃ = {delta3} vs Arratia–Gordon"
    ));
    println!(
        "{:>9} {:>12} {:>14} {:>14} {:>22}",
        "T", "E[A]", "empirical", "ln(empirical)", "ln(analytic bnd)"
    );
    for &t in &[2_000u64, 8_000, 32_000, 128_000] {
        let expected = theorem1::expected_adversary_blocks(&params, t);
        let threshold = (1.0 + delta3) * expected;
        let mut hits = 0u64;
        for trial in 0..trials {
            let cfg = params.to_sim_config(2_000_000 + trial);
            let report = run_simulation(cfg, Box::new(ImmediateReleaseAdversary::new()), t);
            if report.adversary_blocks as f64 >= threshold {
                hits += 1;
            }
        }
        let emp = hits as f64 / trials as f64;
        let t_nu_n = t * params.to_sim_config(0).n_adversary();
        let analytic = adversary_tail_bound(t_nu_n, params.p(), delta3)?;
        println!(
            "{:>9} {:>12.1} {:>14} {:>14} {:>22.3}",
            t,
            expected,
            format!("{hits}/{trials}"),
            if emp > 0.0 {
                format!("{:.2}", emp.ln())
            } else {
                "-inf".into()
            },
            analytic.ln(),
        );
    }
    println!("\nExpected shape: empirical frequencies fall roughly exponentially in T");
    println!("and always sit below the analytic bounds (which are loose but valid;");
    println!("the Chung-et-al. constant 72 dominates at these scales).");
    Ok(())
}
