//! Simulator throughput baseline: measures the round-loop hot path on
//! three workloads, compares against the recorded pre-overhaul seed
//! numbers, and maintains the machine-readable `BENCH_sim.json`
//! baseline the CI smoke guards against regressions.
//!
//! Modes:
//!
//! * `bench_sim` — measure and print the table.
//! * `bench_sim --write PATH` — measure and (re)write the JSON baseline.
//! * `bench_sim --check PATH` — run the short check workloads (scalar,
//!   lockstep-batch, and the end-to-end spec grid) and exit non-zero
//!   if any throughput regressed more than 25% versus the committed
//!   baseline's `check_rounds_per_sec` / `check_batch_rounds_per_sec`
//!   / `check_grid_rounds_per_sec`.
//!
//! The `bench_sim/v2` schema adds lockstep-batch rows (width
//! [`BATCH_WIDTH`]) for the two single-thread workloads. The batch
//! engine runs each lane through the *same* per-lane code path as the
//! scalar loop (that is what buys bit-identical aggregates), so its
//! rounds/sec is expected to track the scalar number — the row exists
//! to catch wave-overhead regressions, not to advertise a speedup.
//!
//! The `bench_sim/v3` schema adds the **end-to-end grid row**: the
//! committed `attack_sweep.toml` golden spec through
//! `consistency_bench::experiment::run_spec`, i.e. the full path the
//! `experiment` binary takes — spec expansion, all cells submitted at
//! once to the shared `nakamoto_sim::executor` pool, analytic overlay.
//! On the 1-CPU reference container this pins the executor's overhead
//! (inline fast path, no pool) to within the regression gate; on a
//! multi-core host the same row records the cell-pipelining speedup
//! the ROADMAP's re-measure item asks for.
//!
//! Budgets and expected runtime: see EXPERIMENTS.md.

use consistency_bench::experiment;
use nakamoto_sim::adversary::{BalanceAdversary, ImmediateReleaseAdversary, PrivateChainAdversary};
use nakamoto_sim::config::SimConfig;
use nakamoto_sim::execution::run_simulation_with;
use nakamoto_sim::montecarlo::TrialPlan;
use nakamoto_sim::spec::ExperimentSpec;
use probability::rng::{RandomSource, SplitMix64};
use std::time::Instant;

/// The committed golden spec the end-to-end grid row runs.
const GRID_SPEC: &str = include_str!("../../../../examples/specs/attack_sweep.toml");

/// Pre-overhaul engine numbers (boxed dispatch, per-round binomial
/// sampling, unbounded arena) measured on the reference 1-CPU container
/// at the seed commit; kept in the JSON so every regenerated baseline
/// still shows the before/after story.
const SEED_PRIVATE_C3_RPS: f64 = 10_261_647.0;
const SEED_IMMEDIATE_N1000_RPS: f64 = 17_542_993.0;
const SEED_SWEEP_WALL_SECS: f64 = 0.942;

/// Fraction of the committed check throughput below which `--check`
/// fails (i.e. a >25% regression). Scalar and batch rows share the
/// same floor.
const CHECK_FLOOR: f64 = 0.75;

/// Lane count for the lockstep-batch rows.
const BATCH_WIDTH: u64 = 8;

fn best_of<F: FnMut() -> f64>(reps: u32, mut f: F) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// Single-thread private-chain run at c = 3 (quiet-dominated), the
/// paper's typical consistency regime. Returns wall seconds.
fn private_chain_c3(rounds: u64) -> f64 {
    let cfg = SimConfig::from_c(100, 4, 3.0, 0.25, 42).unwrap();
    let t = Instant::now();
    let report = run_simulation_with(cfg, PrivateChainAdversary::new(4), rounds);
    let dt = t.elapsed().as_secs_f64();
    assert_eq!(report.rounds, rounds);
    dt
}

/// Single-thread immediate-release run with n = 1000 miners.
fn immediate_n1000(rounds: u64) -> f64 {
    let cfg = SimConfig::new(1_000, 0.25, 1.0 / (3.0 * 1_000.0 * 4.0), 4, 1).unwrap();
    let t = Instant::now();
    let report = run_simulation_with(cfg, ImmediateReleaseAdversary::new(), rounds);
    let dt = t.elapsed().as_secs_f64();
    assert_eq!(report.rounds, rounds);
    dt
}

/// Lockstep-batch private-chain run at c = 3: [`BATCH_WIDTH`] lanes ×
/// `rounds_per_lane`, single thread, through the Monte-Carlo batched
/// fan-out. Returns wall seconds for the whole batch.
fn private_chain_c3_batch(rounds_per_lane: u64) -> f64 {
    let cfg = SimConfig::from_c(100, 4, 3.0, 0.25, 42).unwrap();
    let plan = TrialPlan::new(cfg, rounds_per_lane, BATCH_WIDTH)
        .unwrap()
        .thresholds(vec![12])
        .with_threads(1)
        .with_batch_width(BATCH_WIDTH as usize);
    let t = Instant::now();
    let run = plan.run(|_| PrivateChainAdversary::new(4));
    let dt = t.elapsed().as_secs_f64();
    assert_eq!(run.aggregate.total_rounds(), rounds_per_lane * BATCH_WIDTH);
    dt
}

/// Lockstep-batch immediate-release run with n = 1000 miners:
/// [`BATCH_WIDTH`] lanes × `rounds_per_lane`, single thread.
fn immediate_n1000_batch(rounds_per_lane: u64) -> f64 {
    let cfg = SimConfig::new(1_000, 0.25, 1.0 / (3.0 * 1_000.0 * 4.0), 4, 1).unwrap();
    let plan = TrialPlan::new(cfg, rounds_per_lane, BATCH_WIDTH)
        .unwrap()
        .thresholds(vec![12])
        .with_threads(1)
        .with_batch_width(BATCH_WIDTH as usize);
    let t = Instant::now();
    let run = plan.run(|_| ImmediateReleaseAdversary::new());
    let dt = t.elapsed().as_secs_f64();
    assert_eq!(run.aggregate.total_rounds(), rounds_per_lane * BATCH_WIDTH);
    dt
}

/// The attack-sweep grid (27 cells × 2 adversaries, 8.1M total rounds,
/// the workload of the seed's `attack_sweep` binary) on the parallel
/// trial engine. Returns (wall seconds, total rounds).
fn attack_sweep_grid(threads: usize) -> (f64, u64) {
    let mut cell_seeds = SplitMix64::new(0x000B_EAC4);
    let t = Instant::now();
    let mut total = 0u64;
    for &c in &[0.5f64, 1.0, 2.0] {
        for &nu in &[0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45] {
            let mk = |seed: u64| {
                TrialPlan::new(SimConfig::from_c(100, 4, c, nu, seed).unwrap(), 30_000, 5)
                    .unwrap()
                    .thresholds(vec![12])
                    .with_threads(threads)
            };
            let p = mk(cell_seeds.next_u64()).run(|_| PrivateChainAdversary::new(4));
            let b = mk(cell_seeds.next_u64()).run(|_| BalanceAdversary::new(4));
            total += p.aggregate.total_rounds() + b.aggregate.total_rounds();
        }
    }
    (t.elapsed().as_secs_f64(), total)
}

/// The end-to-end grid workload: the committed `attack_sweep.toml`
/// golden spec through `experiment::run_spec` at the given per-trial
/// budget — spec expansion, the analytic overlay, and every cell
/// submitted at once to the shared executor pool. Returns (wall
/// seconds, cells, total simulated rounds).
fn spec_grid(rounds: u64, trials: u64) -> (f64, usize, u64) {
    let mut spec = ExperimentSpec::parse(GRID_SPEC).expect("committed spec parses");
    experiment::apply_budget(&mut spec, Some(rounds), Some(trials), Some(1), None, None);
    let t = Instant::now();
    let results = experiment::run_spec(&spec).expect("committed spec runs");
    let wall = t.elapsed().as_secs_f64();
    let total = results.iter().map(|r| r.estimate.simulated_rounds()).sum();
    (wall, results.len(), total)
}

/// The short CI check workload: 1M private-chain rounds at c = 3,
/// single thread, best of 3. Returns rounds/sec.
fn check_throughput() -> f64 {
    const ROUNDS: u64 = 1_000_000;
    ROUNDS as f64 / best_of(3, || private_chain_c3(ROUNDS))
}

/// The batch-mode CI check workload: the same 1M private-chain rounds
/// split over [`BATCH_WIDTH`] lockstep lanes, best of 3. Returns
/// rounds/sec.
fn check_batch_throughput() -> f64 {
    const ROUNDS: u64 = 1_000_000;
    ROUNDS as f64 / best_of(3, || private_chain_c3_batch(ROUNDS / BATCH_WIDTH))
}

/// The grid CI check workload: the golden-spec grid at a ~1M-round
/// budget (10k rounds × 2 trials × 54 cells), best of 3. Returns
/// rounds/sec end to end.
fn check_grid_throughput() -> f64 {
    let mut total = 0u64;
    let wall = best_of(3, || {
        let (w, _, r) = spec_grid(10_000, 2);
        total = r;
        w
    });
    total as f64 / wall
}

struct Baseline {
    private_rps: f64,
    private_batch_rps: f64,
    immediate_rps: f64,
    immediate_batch_rps: f64,
    sweep_walls: Vec<(usize, f64)>,
    sweep_rounds: u64,
    grid_wall: f64,
    grid_cells: usize,
    grid_rounds: u64,
    check_rps: f64,
    check_batch_rps: f64,
    check_grid_rps: f64,
    cpus: usize,
}

fn measure() -> Baseline {
    const ROUNDS: u64 = 2_000_000;
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let private_rps = ROUNDS as f64 / best_of(3, || private_chain_c3(ROUNDS));
    let private_batch_rps =
        ROUNDS as f64 / best_of(3, || private_chain_c3_batch(ROUNDS / BATCH_WIDTH));
    let immediate_rps = ROUNDS as f64 / best_of(3, || immediate_n1000(ROUNDS));
    let immediate_batch_rps =
        ROUNDS as f64 / best_of(3, || immediate_n1000_batch(ROUNDS / BATCH_WIDTH));
    let mut sweep_rounds = 0;
    let sweep_walls = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let wall = best_of(2, || {
                let (w, r) = attack_sweep_grid(threads);
                sweep_rounds = r;
                w
            });
            (threads, wall)
        })
        .collect();
    let mut grid_cells = 0;
    let mut grid_rounds = 0;
    let grid_wall = best_of(2, || {
        let (w, cells, r) = spec_grid(30_000, 5);
        grid_cells = cells;
        grid_rounds = r;
        w
    });
    let check_rps = check_throughput();
    let check_batch_rps = check_batch_throughput();
    let check_grid_rps = check_grid_throughput();
    Baseline {
        private_rps,
        private_batch_rps,
        immediate_rps,
        immediate_batch_rps,
        sweep_walls,
        sweep_rounds,
        grid_wall,
        grid_cells,
        grid_rounds,
        check_rps,
        check_batch_rps,
        check_grid_rps,
        cpus,
    }
}

fn print_table(b: &Baseline) {
    consistency_bench::section(&format!("Simulator throughput ({} CPU(s) visible)", b.cpus));
    println!(
        "{:<28} {:>16} {:>16} {:>9}",
        "workload", "rounds/sec", "seed rounds/sec", "speedup"
    );
    println!(
        "{:<28} {:>16.0} {:>16.0} {:>8.1}x",
        "private_chain_c3 (1 thread)",
        b.private_rps,
        SEED_PRIVATE_C3_RPS,
        b.private_rps / SEED_PRIVATE_C3_RPS
    );
    println!(
        "{:<28} {:>16.0} {:>16.0} {:>8.1}x",
        format!("private_chain_c3 (batch {BATCH_WIDTH})"),
        b.private_batch_rps,
        SEED_PRIVATE_C3_RPS,
        b.private_batch_rps / SEED_PRIVATE_C3_RPS
    );
    println!(
        "{:<28} {:>16.0} {:>16.0} {:>8.1}x",
        "immediate_n1000 (1 thread)",
        b.immediate_rps,
        SEED_IMMEDIATE_N1000_RPS,
        b.immediate_rps / SEED_IMMEDIATE_N1000_RPS
    );
    println!(
        "{:<28} {:>16.0} {:>16.0} {:>8.1}x",
        format!("immediate_n1000 (batch {BATCH_WIDTH})"),
        b.immediate_batch_rps,
        SEED_IMMEDIATE_N1000_RPS,
        b.immediate_batch_rps / SEED_IMMEDIATE_N1000_RPS
    );
    for &(threads, wall) in &b.sweep_walls {
        println!(
            "{:<28} {:>15.3}s {:>15.3}s {:>8.1}x",
            format!("attack_sweep ({threads} threads)"),
            wall,
            SEED_SWEEP_WALL_SECS,
            SEED_SWEEP_WALL_SECS / wall
        );
    }
    println!(
        "{:<28} {:>15.3}s {:>16.0} {:>9}",
        format!("spec grid ({} cells, e2e)", b.grid_cells),
        b.grid_wall,
        b.grid_rounds as f64 / b.grid_wall,
        "-"
    );
    println!(
        "{:<28} {:>16.0} {:>16} {:>9}",
        "check workload (CI smoke)", b.check_rps, "-", "-"
    );
    println!(
        "{:<28} {:>16.0} {:>16} {:>9}",
        "check batch workload", b.check_batch_rps, "-", "-"
    );
    println!(
        "{:<28} {:>16.0} {:>16} {:>9}",
        "check grid workload", b.check_grid_rps, "-", "-"
    );
}

fn to_json(b: &Baseline) -> String {
    let sweep: Vec<String> = b
        .sweep_walls
        .iter()
        .map(|(threads, wall)| {
            format!(
                "    {{ \"threads\": {threads}, \"wall_secs\": {wall:.4}, \
                 \"total_rounds\": {}, \"speedup_vs_seed\": {:.2} }}",
                b.sweep_rounds,
                SEED_SWEEP_WALL_SECS / wall
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"bench_sim/v3\",\n  \"regenerate\": \"cargo run --release -p \
         consistency_bench --bin bench_sim -- --write BENCH_sim.json\",\n  \"host_cpus\": {},\n  \
         \"batch_width\": {BATCH_WIDTH},\n  \
         \"seed_baseline\": {{\n    \"description\": \"pre-overhaul engine: boxed dispatch, \
         per-round sampling, unbounded arena (commit 3627bf5, same container)\",\n    \
         \"private_chain_c3_rounds_per_sec\": {:.0},\n    \
         \"immediate_n1000_rounds_per_sec\": {:.0},\n    \"attack_sweep_wall_secs\": {:.3}\n  \
         }},\n  \"private_chain_c3_rounds_per_sec\": {:.0},\n  \
         \"private_chain_c3_speedup_vs_seed\": {:.2},\n  \
         \"private_chain_c3_batch_rounds_per_sec\": {:.0},\n  \
         \"private_chain_c3_batch_vs_scalar\": {:.2},\n  \
         \"immediate_n1000_rounds_per_sec\": {:.0},\n  \
         \"immediate_n1000_speedup_vs_seed\": {:.2},\n  \
         \"immediate_n1000_batch_rounds_per_sec\": {:.0},\n  \
         \"immediate_n1000_batch_vs_scalar\": {:.2},\n  \"attack_sweep\": [\n{}\n  ],\n  \
         \"grid_attack_sweep\": {{\n    \"spec\": \"examples/specs/attack_sweep.toml\",\n    \
         \"cells\": {},\n    \"wall_secs\": {:.4},\n    \"total_rounds\": {},\n    \
         \"rounds_per_sec\": {:.0}\n  }},\n  \
         \"check_rounds_per_sec\": {:.0},\n  \"check_batch_rounds_per_sec\": {:.0},\n  \
         \"check_grid_rounds_per_sec\": {:.0},\n  \
         \"check_regression_floor\": {:.2}\n}}\n",
        b.cpus,
        SEED_PRIVATE_C3_RPS,
        SEED_IMMEDIATE_N1000_RPS,
        SEED_SWEEP_WALL_SECS,
        b.private_rps,
        b.private_rps / SEED_PRIVATE_C3_RPS,
        b.private_batch_rps,
        b.private_batch_rps / b.private_rps,
        b.immediate_rps,
        b.immediate_rps / SEED_IMMEDIATE_N1000_RPS,
        b.immediate_batch_rps,
        b.immediate_batch_rps / b.immediate_rps,
        sweep.join(",\n"),
        b.grid_cells,
        b.grid_wall,
        b.grid_rounds,
        b.grid_rounds as f64 / b.grid_wall,
        b.check_rps,
        b.check_batch_rps,
        b.check_grid_rps,
        CHECK_FLOOR,
    )
}

/// Minimal field extraction from our own JSON (no parser dependency):
/// finds `"key": <number>`.
fn json_number(source: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = source.find(&needle)? + needle.len();
    let rest = source[at..].trim_start();
    let end = rest
        .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = consistency_bench::cli::Args::parse(
        "bench_sim [--write [PATH] | --check [PATH]]",
        0,
        &["--write", "--check"],
    )?;
    match (&args.check, &args.write) {
        (Some(path), None) => {
            let path = path.as_deref().unwrap_or("BENCH_sim.json");
            let committed = std::fs::read_to_string(path)?;
            let floor = json_number(&committed, "check_regression_floor").unwrap_or(CHECK_FLOOR);
            let baseline = json_number(&committed, "check_rounds_per_sec")
                .ok_or("BENCH_sim.json has no check_rounds_per_sec")?;
            let mut failed = false;
            let fresh = check_throughput();
            let ratio = fresh / baseline;
            println!(
                "check workload: {fresh:.0} rounds/sec vs committed {baseline:.0} \
                 (ratio {ratio:.2}, floor {floor:.2})"
            );
            failed |= ratio < floor;
            // Batch row: gated under the same floor. Absent from a
            // pre-v2 baseline, in which case only the scalar gate runs.
            match json_number(&committed, "check_batch_rounds_per_sec") {
                Some(batch_baseline) => {
                    let fresh = check_batch_throughput();
                    let ratio = fresh / batch_baseline;
                    println!(
                        "check batch workload: {fresh:.0} rounds/sec vs committed \
                         {batch_baseline:.0} (ratio {ratio:.2}, floor {floor:.2})"
                    );
                    failed |= ratio < floor;
                }
                None => println!("check batch workload: no committed row (pre-v2 baseline)"),
            }
            // End-to-end grid row: gated under the same floor. Absent
            // from a pre-v3 baseline, in which case the gate is skipped.
            match json_number(&committed, "check_grid_rounds_per_sec") {
                Some(grid_baseline) => {
                    let fresh = check_grid_throughput();
                    let ratio = fresh / grid_baseline;
                    println!(
                        "check grid workload: {fresh:.0} rounds/sec vs committed \
                         {grid_baseline:.0} (ratio {ratio:.2}, floor {floor:.2})"
                    );
                    failed |= ratio < floor;
                }
                None => println!("check grid workload: no committed row (pre-v3 baseline)"),
            }
            if failed {
                eprintln!(
                    "FAIL: single-thread round throughput regressed more than \
                     {:.0}% vs the committed baseline",
                    (1.0 - floor) * 100.0
                );
                std::process::exit(1);
            }
            println!("OK: within the regression budget");
        }
        (None, Some(path)) => {
            let path = path.as_deref().unwrap_or("BENCH_sim.json");
            let baseline = measure();
            print_table(&baseline);
            std::fs::write(path, to_json(&baseline))?;
            println!("\nwrote {path}");
        }
        (Some(_), Some(_)) => {
            return Err("pass either --check or --write, not both".into());
        }
        (None, None) => print_table(&measure()),
    }
    Ok(())
}
