//! Validates **Eqs. 26/27/44**: Monte-Carlo convergence-opportunity and
//! adversary-block counts against their analytic expectations across a
//! (Δ, n, ν, c) grid.
//!
//! `cargo run --release -p consistency-bench --bin convergence_validation [rounds]`

use consistency_core::convergence::validate;
use consistency_core::params::ProtocolParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(400_000);

    consistency_bench::section("Eq. 26/27 validation: measured vs analytic over T rounds");
    println!(
        "{:>5} {:>6} {:>6} {:>6} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9} {:>11}",
        "Δ", "n", "ν", "c", "E[C]", "C", "err%", "E[A]", "A", "err%", "suffix_err"
    );
    let mut seed = 10_000u64;
    for &delta in &[1u64, 2, 4] {
        for &n in &[100u64, 1_000] {
            for &nu in &[0.1, 0.3] {
                // Choose p so that α·Δ is moderate: p = 1/(c·n·Δ) with c
                // picked to make convergence events frequent.
                let c = 9.0;
                let params = ProtocolParams::from_c(n, delta, c, nu)?;
                seed += 1;
                let row = validate(&params, rounds, seed)?;
                println!(
                    "{:>5} {:>6} {:>6} {:>6.1} {:>12.1} {:>12} {:>8.2}% {:>12.1} {:>12} {:>8.2}% {:>11.5}",
                    delta,
                    n,
                    nu,
                    params.c(),
                    row.expected_convergence,
                    row.measured_convergence,
                    100.0 * row.convergence_rel_error(),
                    row.expected_adversary,
                    row.measured_adversary,
                    100.0 * row.adversary_rel_error(),
                    row.suffix_max_abs_error(),
                );
            }
        }
    }
    println!("\nEvery row should show errors at Monte-Carlo noise scale (≲ a few %).");
    Ok(())
}
