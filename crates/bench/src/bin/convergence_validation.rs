//! Validates **Eqs. 26/27/44**: Monte-Carlo convergence-opportunity and
//! adversary-block counts against their analytic expectations across a
//! (Δ, n, ν, c) grid — multi-trial means with standard errors from the
//! parallel trial engine, so every gap is judged against its own noise
//! scale.
//!
//! `cargo run --release -p consistency_bench --bin convergence_validation [rounds-per-trial] [trials]`
//!
//! Budgets and expected runtime: see EXPERIMENTS.md.

use consistency_core::convergence::validate_trials;
use consistency_core::params::ProtocolParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = consistency_bench::cli::Args::parse(
        "convergence_validation [rounds-per-trial] [trials]",
        2,
        &[],
    )?;
    let rounds = args.pos_u64(0)?.unwrap_or(100_000);
    let trials = args.pos_u64(1)?.unwrap_or(4);

    consistency_bench::section(&format!(
        "Eq. 26/27 validation: mean over {trials} trials × {rounds} rounds vs analytic"
    ));
    println!(
        "{:>5} {:>6} {:>6} {:>6} {:>12} {:>12} {:>9} {:>7} {:>12} {:>12} {:>9}",
        "Δ", "n", "ν", "c", "E[C]", "mean C", "err%", "z", "E[A]", "mean A", "err%"
    );
    let mut seed = 10_000u64;
    for &delta in &[1u64, 2, 4] {
        for &n in &[100u64, 1_000] {
            for &nu in &[0.1, 0.3] {
                // Choose p so that α·Δ is moderate: p = 1/(c·n·Δ) with c
                // picked to make convergence events frequent.
                let c = 9.0;
                let params = ProtocolParams::from_c(n, delta, c, nu)?;
                seed += 1;
                let row = validate_trials(&params, rounds, trials, seed)?;
                println!(
                    "{:>5} {:>6} {:>6} {:>6.1} {:>12.1} {:>12.1} {:>8.2}% {:>7.2} {:>12.1} {:>12.1} {:>8.2}%",
                    delta,
                    n,
                    nu,
                    params.c(),
                    row.expected_convergence,
                    row.mean_convergence,
                    100.0 * row.convergence_rel_error(),
                    row.convergence_z_score(),
                    row.expected_adversary,
                    row.mean_adversary,
                    100.0 * row.adversary_rel_error(),
                );
            }
        }
    }
    println!("\nEvery row should show errors at Monte-Carlo noise scale: |z| ≲ 3 and");
    println!("err% shrinking like 1/√(trials·rounds).");
    Ok(())
}
