//! **Extension experiment** (the paper's §II future-work metrics):
//! chain growth and chain quality measured in the simulator across
//! (ν, c), with the standard analytic references
//! `growth ≈ α/(1+αΔ)`-shaped and `quality ≳ 1 − ν/µ`.
//!
//! `cargo run --release -p consistency-bench --bin chain_metrics [rounds]`

use nakamoto_sim::adversary::{ImmediateReleaseAdversary, PrivateChainAdversary};
use nakamoto_sim::config::SimConfig;
use nakamoto_sim::execution::run_simulation;
use nakamoto_sim::selfish::SelfishMiningAdversary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = consistency_bench::cli::Args::parse("chain_metrics [rounds]", 1, &[])?;
    let rounds = args.pos_u64(0)?.unwrap_or(200_000);
    let n = 200u64;
    let delta = 4u64;

    consistency_bench::section("Chain growth & quality vs (ν, c), honest-behaving adversary");
    println!(
        "{:>6} {:>6} {:>12} {:>14} {:>12} {:>14}",
        "ν", "c", "growth/round", "α_h + νnp ref", "quality", "α_h/(α_h+νnp)"
    );
    for &c in &[0.5f64, 1.0, 3.0, 10.0] {
        for &nu in &[0.1, 0.3] {
            let cfg = SimConfig::from_c(n, delta, c, nu, 555)?;
            let report = run_simulation(cfg, Box::new(ImmediateReleaseAdversary::new()), rounds);
            // With immediate (1-round) release and a single honest group
            // there is no propagation shadow: height grows by 1 per
            // H-round (α_h = 1−(1−p)^{n_honest}) plus the adversary's
            // sequential chain contribution νnp per round.
            let p = cfg.hardness;
            let alpha_h = -((cfg.n_honest() as f64) * (-p).ln_1p()).exp_m1();
            let adv_rate = cfg.n_adversary() as f64 * p;
            let growth_ref = alpha_h + adv_rate;
            let quality_ref = alpha_h / (alpha_h + adv_rate);
            println!(
                "{:>6} {:>6} {:>12.6} {:>14.6} {:>12.4} {:>14.4}",
                nu,
                c,
                report.chain_growth_rate(),
                growth_ref,
                report.chain_quality(),
                quality_ref,
            );
        }
    }

    consistency_bench::section("Same metrics under the private-chain attack");
    println!(
        "{:>6} {:>6} {:>12} {:>12}",
        "ν", "c", "growth/round", "quality"
    );
    for &c in &[0.5f64, 1.0, 3.0] {
        for &nu in &[0.1, 0.3, 0.45] {
            let cfg = SimConfig::from_c(n, delta, c, nu, 556)?;
            let report = run_simulation(cfg, Box::new(PrivateChainAdversary::new(delta)), rounds);
            println!(
                "{:>6} {:>6} {:>12.6} {:>12.4}",
                nu,
                c,
                report.chain_growth_rate(),
                report.chain_quality(),
            );
        }
    }
    consistency_bench::section("Selfish mining (Eyal–Sirer, extension): revenue vs honest share");
    println!(
        "{:>6} {:>12} {:>14} {:>14}",
        "ν", "quality", "honest share µ", "profitable?"
    );
    for &nu in &[0.1, 0.2, 0.3, 0.35, 0.4, 0.45] {
        let cfg = SimConfig::from_c(n, 2, 2.0, nu, 557)?;
        let report = run_simulation(cfg, Box::new(SelfishMiningAdversary::new(2)), rounds);
        let mu = 1.0 - nu;
        println!(
            "{:>6} {:>12.4} {:>14.4} {:>14}",
            nu,
            report.chain_quality(),
            mu,
            // Profitable iff the adversary's chain share exceeds ν.
            if 1.0 - report.chain_quality() > nu {
                "yes"
            } else {
                "no"
            },
        );
    }
    println!("\nShape: quality degrades towards (and below) the honest-mining line");
    println!("under attack; growth stays near the honest reference (the adversary");
    println!("cannot slow mining, only waste honest work). Selfish mining turns");
    println!("profitable above the γ=0 threshold ν ≈ 1/3.");
    Ok(())
}
