//! The **Kiffer-et-al. ablation** (paper §IV "Novelty of our Theorem 1"):
//! how far the reported `1/(µp)`-for-`1/α` slip moves the sufficient
//! condition, versus the corrected rate.
//!
//! `cargo run -p consistency-bench --bin kiffer_ablation`

use consistency_core::kiffer;
use consistency_core::params::ProtocolParams;
use consistency_core::theorem1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    consistency_bench::section("Interarrival estimates: corrected 1/α vs incorrect 1/(µp)");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>12}",
        "n", "c", "1/α", "1/(µp)", "ratio"
    );
    for &n in &[100u64, 1_000, 100_000] {
        for &c in &[1.0, 10.0] {
            let p = ProtocolParams::from_c(n, 8, c, 0.25)?;
            println!(
                "{:>8} {:>8} {:>14.4e} {:>14.4e} {:>12.1}",
                n,
                c,
                kiffer::interarrival_corrected(&p),
                kiffer::interarrival_incorrect(&p),
                kiffer::interarrival_error_factor(&p)
            );
        }
    }
    println!("(ratio ≈ n: the slip loses the aggregation over miners entirely)");

    consistency_bench::section("Acceptance regions: corrected vs incorrect sufficient condition");
    println!(
        "{:>6} {:>6} {:>18} {:>18} {:>14}",
        "ν", "c", "Thm-1 margin (ln)", "incorrect (ln)", "verdicts"
    );
    for &nu in &[0.1, 0.25, 0.4] {
        for &c in &[0.3, 0.5, 1.0, 2.0, 5.0] {
            let p = ProtocolParams::from_c(1_000, 8, c, nu)?;
            let correct = theorem1::ln_margin(&p);
            let incorrect = kiffer::ln_incorrect_margin(&p);
            println!(
                "{:>6} {:>6} {:>18.3} {:>18.3} {:>7}/{:<7}",
                nu,
                c,
                correct,
                incorrect,
                if correct > 0.0 { "accept" } else { "reject" },
                if incorrect > 0.0 { "accept" } else { "reject" },
            );
        }
    }
    println!("\nRows with reject/accept show parameters the uncorrected analysis");
    println!("would wrongly certify as consistent.");
    Ok(())
}
