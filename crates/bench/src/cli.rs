//! Shared command-line parsing for the harness binaries.
//!
//! Every binary used to hand-roll its own `std::env::args` loop
//! (twelve near-copies across `src/bin/`); this module centralises the
//! common vocabulary — positional budgets plus the
//! `--threads`/`--seed`/`--budget`/`--out` flag family — with one
//! error style and per-binary opt-in, so an unsupported flag fails
//! loudly instead of being silently ignored.
//!
//! ```no_run
//! let args = consistency_bench::cli::Args::parse(
//!     "[rounds-per-trial] [trials]",
//!     2, // at most two positionals
//!     &["--threads", "--seed"],
//! )?;
//! let rounds = args.pos_u64(0)?.unwrap_or(30_000);
//! let trials = args.pos_u64(1)?.unwrap_or(5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

/// Flags a binary may opt into (`Args::parse`'s `allowed` list).
/// Value-taking: `--threads N`, `--jobs N`, `--seed N`, `--budget N`,
/// `--rounds N`, `--trials N`, `--batch N`, `--out PATH`,
/// `--replay PATH`, `--write [PATH]`, `--check [PATH]`. Boolean:
/// `--seed-from-env`, `--verbose`.
pub const KNOWN_FLAGS: &[&str] = &[
    "--threads",
    "--jobs",
    "--seed",
    "--budget",
    "--rounds",
    "--trials",
    "--batch",
    "--out",
    "--replay",
    "--write",
    "--check",
    "--seed-from-env",
    "--verbose",
];

/// Flags whose value may be omitted (a following flag or end-of-args
/// leaves them at their default path).
const OPTIONAL_VALUE_FLAGS: &[&str] = &["--write", "--check"];

/// Boolean flags (no value).
const BOOL_FLAGS: &[&str] = &["--seed-from-env", "--verbose"];

/// Parsed command line: positionals in order plus the recognised flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// Non-flag arguments, in order.
    pub positionals: Vec<String>,
    /// `--threads N`: pool slots per cell's trial fan-out (0 = the
    /// shared pool's width).
    pub threads: Option<usize>,
    /// `--jobs N`: width of the process-wide executor pool — the only
    /// OS-thread knob (0 = one worker per CPU).
    pub jobs: Option<usize>,
    /// `--seed N`: master-seed override.
    pub seed: Option<u64>,
    /// `--budget N`: case/iteration budget.
    pub budget: Option<u64>,
    /// `--rounds N`: rounds-per-trial (or per-phase) override.
    pub rounds: Option<u64>,
    /// `--trials N`: trial-count override.
    pub trials: Option<u64>,
    /// `--batch N`: lockstep batch-width override (1 = scalar engine).
    pub batch: Option<u64>,
    /// `--out PATH`: machine-readable output path.
    pub out: Option<String>,
    /// `--replay PATH`: a saved repro spec to re-run.
    pub replay: Option<String>,
    /// `--write [PATH]`: write a fresh baseline (with `Some(None)` for
    /// the default path).
    pub write: Option<Option<String>>,
    /// `--check [PATH]`: check against a committed baseline.
    pub check: Option<Option<String>>,
    /// `--seed-from-env`: take the seed from the environment.
    pub seed_from_env: bool,
    /// `--verbose`: stream per-cell completions and executor counters
    /// to stderr.
    pub verbose: bool,
}

impl Args {
    /// Parses `std::env::args`, accepting at most `max_positionals`
    /// positional arguments and only the `allowed` flags (each from
    /// [`KNOWN_FLAGS`]).
    ///
    /// # Errors
    ///
    /// Returns a usage-carrying message for unknown flags, excess
    /// positionals, missing flag values, or malformed numbers.
    pub fn parse(usage: &str, max_positionals: usize, allowed: &[&str]) -> Result<Self, String> {
        Self::parse_from(std::env::args().skip(1), usage, max_positionals, allowed)
    }

    /// [`Args::parse`] over an explicit argument iterator (how the
    /// unit tests drive the parser).
    ///
    /// # Errors
    ///
    /// Same contract as [`Args::parse`].
    pub fn parse_from<I>(
        args: I,
        usage: &str,
        max_positionals: usize,
        allowed: &[&str],
    ) -> Result<Self, String>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        debug_assert!(
            allowed.iter().all(|f| KNOWN_FLAGS.contains(f)),
            "allowed flags must come from KNOWN_FLAGS"
        );
        let mut parsed = Args::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if !arg.starts_with("--") {
                if parsed.positionals.len() == max_positionals {
                    return Err(format!(
                        "unexpected argument `{arg}` (at most {max_positionals} positional argument(s)); usage: {usage}"
                    ));
                }
                parsed.positionals.push(arg);
                continue;
            }
            if !allowed.contains(&arg.as_str()) {
                return Err(format!("unknown argument `{arg}`; usage: {usage}"));
            }
            if BOOL_FLAGS.contains(&arg.as_str()) {
                match arg.as_str() {
                    "--seed-from-env" => parsed.seed_from_env = true,
                    "--verbose" => parsed.verbose = true,
                    _ => unreachable!("BOOL_FLAGS ⊆ KNOWN_FLAGS"),
                }
                continue;
            }
            let value = if OPTIONAL_VALUE_FLAGS.contains(&arg.as_str()) {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next(),
                    _ => None,
                }
            } else {
                Some(
                    iter.next()
                        .ok_or_else(|| format!("`{arg}` needs a value; usage: {usage}"))?,
                )
            };
            let number = |value: &Option<String>| -> Result<u64, String> {
                value
                    .as_ref()
                    .expect("value flags always carry a value here")
                    .parse()
                    .map_err(|_| {
                        format!(
                            "`{arg}` needs an unsigned integer, got `{}`",
                            value.as_deref().unwrap_or_default()
                        )
                    })
            };
            match arg.as_str() {
                "--threads" => {
                    parsed.threads = Some(usize::try_from(number(&value)?).map_err(|_| {
                        format!(
                            "`--threads` does not fit usize: {}",
                            value.unwrap_or_default()
                        )
                    })?);
                }
                "--jobs" => {
                    parsed.jobs = Some(usize::try_from(number(&value)?).map_err(|_| {
                        format!("`--jobs` does not fit usize: {}", value.unwrap_or_default())
                    })?);
                }
                "--seed" => parsed.seed = Some(number(&value)?),
                "--budget" => parsed.budget = Some(number(&value)?),
                "--rounds" => parsed.rounds = Some(number(&value)?),
                "--trials" => parsed.trials = Some(number(&value)?),
                "--batch" => parsed.batch = Some(number(&value)?),
                "--out" => parsed.out = value,
                "--replay" => parsed.replay = value,
                "--write" => parsed.write = Some(value),
                "--check" => parsed.check = Some(value),
                _ => unreachable!("allowed ⊆ KNOWN_FLAGS"),
            }
        }
        Ok(parsed)
    }

    /// The `i`-th positional as a `u64`, if given.
    ///
    /// # Errors
    ///
    /// Returns a message naming the position for non-numeric input.
    pub fn pos_u64(&self, i: usize) -> Result<Option<u64>, String> {
        self.positionals
            .get(i)
            .map(|s| {
                s.parse().map_err(|_| {
                    format!(
                        "positional argument {} must be an unsigned integer, got `{s}`",
                        i + 1
                    )
                })
            })
            .transpose()
    }

    /// The `i`-th positional as a `usize`, if given.
    ///
    /// # Errors
    ///
    /// Same contract as [`Args::pos_u64`].
    pub fn pos_usize(&self, i: usize) -> Result<Option<usize>, String> {
        Ok(self
            .pos_u64(i)?
            .map(|v| usize::try_from(v).expect("u64 budget fits usize on supported targets")))
    }
}

/// Resolves `--seed-from-env`: `SCENARIO_FUZZ_SEED`, then
/// `GITHUB_RUN_ID`, then the given default (how CI gets fresh fuzz
/// coverage per run while keeping the seed reproducible from the log).
#[must_use]
pub fn seed_from_env(default: u64) -> u64 {
    for var in ["SCENARIO_FUZZ_SEED", "GITHUB_RUN_ID"] {
        if let Ok(value) = std::env::var(var) {
            if let Ok(seed) = value.trim().parse::<u64>() {
                return seed;
            }
        }
    }
    eprintln!(
        "--seed-from-env: neither SCENARIO_FUZZ_SEED nor GITHUB_RUN_ID parse as u64; \
         using the default seed"
    );
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[&str] = KNOWN_FLAGS;

    #[test]
    fn positionals_and_flags_mix() {
        let args = Args::parse_from(
            [
                "5000",
                "--threads",
                "4",
                "7",
                "--seed",
                "99",
                "--out",
                "x.json",
            ],
            "usage",
            2,
            ALL,
        )
        .unwrap();
        assert_eq!(args.positionals, vec!["5000", "7"]);
        assert_eq!(args.pos_u64(0).unwrap(), Some(5000));
        assert_eq!(args.pos_u64(1).unwrap(), Some(7));
        assert_eq!(args.pos_u64(2).unwrap(), None);
        assert_eq!(args.threads, Some(4));
        assert_eq!(args.seed, Some(99));
        assert_eq!(args.out.as_deref(), Some("x.json"));
    }

    #[test]
    fn unsupported_flags_error_with_usage() {
        let err =
            Args::parse_from(["--budget", "3"], "usage: [rounds]", 1, &["--seed"]).unwrap_err();
        assert!(
            err.contains("--budget") && err.contains("usage: [rounds]"),
            "{err}"
        );
        let err = Args::parse_from(["--seed"], "u", 0, &["--seed"]).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err = Args::parse_from(["--seed", "abc"], "u", 0, &["--seed"]).unwrap_err();
        assert!(err.contains("unsigned integer"), "{err}");
    }

    #[test]
    fn excess_positionals_are_rejected() {
        // The bench_sim regression: a stray path (forgotten --check)
        // must error, not be silently ignored.
        let err = Args::parse_from(["BENCH_sim.json"], "bench_sim [--check]", 0, ALL).unwrap_err();
        assert!(
            err.contains("unexpected argument `BENCH_sim.json`") && err.contains("bench_sim"),
            "{err}"
        );
        let err = Args::parse_from(["1", "2", "3"], "u", 2, ALL).unwrap_err();
        assert!(err.contains("unexpected argument `3`"), "{err}");
    }

    #[test]
    fn batch_flag_takes_a_width() {
        let args = Args::parse_from(["--batch", "8"], "u", 0, ALL).unwrap();
        assert_eq!(args.batch, Some(8));
        let err = Args::parse_from(["--batch"], "u", 0, ALL).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err = Args::parse_from(["--batch", "wide"], "u", 0, ALL).unwrap_err();
        assert!(err.contains("unsigned integer"), "{err}");
    }

    #[test]
    fn optional_value_flags_allow_bare_use() {
        let args = Args::parse_from(["--check"], "u", 0, ALL).unwrap();
        assert_eq!(args.check, Some(None));
        let args = Args::parse_from(["--write", "fresh.json"], "u", 0, ALL).unwrap();
        assert_eq!(args.write, Some(Some("fresh.json".into())));
        let args = Args::parse_from(["--check", "--seed-from-env"], "u", 0, ALL).unwrap();
        assert_eq!(args.check, Some(None));
        assert!(args.seed_from_env);
    }

    #[test]
    fn jobs_and_verbose_flags_parse() {
        let args = Args::parse_from(["--jobs", "4", "--verbose"], "u", 0, ALL).unwrap();
        assert_eq!(args.jobs, Some(4));
        assert!(args.verbose);
        assert!(
            !args.seed_from_env,
            "--verbose must not leak into other bools"
        );
        let err = Args::parse_from(["--jobs"], "u", 0, ALL).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err = Args::parse_from(["--jobs", "many"], "u", 0, ALL).unwrap_err();
        assert!(err.contains("unsigned integer"), "{err}");
    }

    #[test]
    fn bad_positionals_name_their_position() {
        let args = Args::parse_from(["xyz"], "u", 1, ALL).unwrap();
        let err = args.pos_u64(0).unwrap_err();
        assert!(err.contains("argument 1") && err.contains("xyz"), "{err}");
    }
}
