#![forbid(unsafe_code)]
//! Shared helpers for the benchmark harness binaries that regenerate
//! every table and figure of the paper (see DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded outputs).
//!
//! * [`cli`] — the shared flag/positional parser every binary uses;
//! * [`table`] — Wilson-CI cell formatting shared by the sweeps;
//! * [`experiment`] — the spec-driven experiment runner behind the
//!   unified `experiment` binary and the ported sweep harnesses.

pub mod cli;
pub mod experiment;
pub mod table;

/// Formats a floating-point value in compact scientific-or-fixed form
/// for the harness tables.
#[must_use]
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if (1e-4..1e6).contains(&a) {
        format!("{v:.6}")
    } else {
        format!("{v:.4e}")
    }
}

/// Prints a header followed by an underline of the same width.
pub fn section(title: &str) {
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
}

/// Relative error `|measured − expected| / max(|expected|, floor)`.
#[must_use]
pub fn rel_err(measured: f64, expected: f64, floor: f64) -> f64 {
    (measured - expected).abs() / expected.abs().max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_modes() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.5), "1.500000");
        assert!(fmt(1e-9).contains('e'));
        assert!(fmt(1e9).contains('e'));
    }

    #[test]
    fn rel_err_with_floor() {
        assert!((rel_err(1.1, 1.0, 1.0) - 0.1).abs() < 1e-12);
        assert_eq!(rel_err(0.5, 0.0, 1.0), 0.5);
    }
}
