//! Structural analysis: strongly connected components, irreducibility,
//! period, and ergodicity.
//!
//! The paper asserts (Section V-A) that `C_F` and `C_{F‖P}` are
//! time-homogeneous, irreducible and ergodic; `consistency-core` verifies
//! that claim mechanically with these routines.

use crate::chain::MarkovChain;

/// Result of a strongly-connected-component decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    /// `component[v]` is the SCC index of state `v`; indices are in
    /// reverse topological order (Tarjan's numbering).
    pub component: Vec<usize>,
    /// Number of components.
    pub n_components: usize,
}

/// Tarjan's strongly-connected-components algorithm (iterative, so deep
/// chains like `C_F` with `Δ` in the thousands cannot overflow the call
/// stack).
#[must_use]
pub fn strongly_connected_components(chain: &MarkovChain) -> SccDecomposition {
    let n = chain.n_states();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut component = vec![UNVISITED; n];
    let mut next_index = 0usize;
    let mut n_components = 0usize;

    // Explicit DFS frame: (vertex, next successor position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut succ_pos)) = call_stack.last_mut() {
            let succs = chain.successor_indices(v);
            if *succ_pos < succs.len() {
                let w = succs[*succ_pos];
                *succ_pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("stack invariant");
                        on_stack[w] = false;
                        component[w] = n_components;
                        if w == v {
                            break;
                        }
                    }
                    n_components += 1;
                }
            }
        }
    }

    SccDecomposition {
        component,
        n_components,
    }
}

/// `true` iff every state can reach every other state.
#[must_use]
pub fn is_irreducible(chain: &MarkovChain) -> bool {
    strongly_connected_components(chain).n_components == 1
}

/// The period of an irreducible chain: the gcd of all cycle lengths.
///
/// Computed by a single BFS: assign levels from state 0 and fold every
/// edge `(u, v)` into `gcd` via `|level[u] + 1 − level[v]|`.
///
/// # Panics
///
/// Panics if the chain is not irreducible (callers should check
/// [`is_irreducible`] first).
#[must_use]
pub fn period(chain: &MarkovChain) -> usize {
    assert!(
        is_irreducible(chain),
        "period is only defined for irreducible chains"
    );
    let n = chain.n_states();
    let mut level = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    level[0] = 0;
    queue.push_back(0usize);
    let mut g: usize = 0;
    while let Some(u) = queue.pop_front() {
        for &v in chain.successor_indices(u) {
            if level[v] == usize::MAX {
                level[v] = level[u] + 1;
                queue.push_back(v);
            } else {
                let diff = (level[u] + 1).abs_diff(level[v]);
                g = gcd(g, diff);
            }
        }
    }
    if g == 0 {
        // No non-tree edge discovered: single-cycle chain; its period is
        // the cycle length = number of states reached.
        return n;
    }
    g
}

/// `true` iff the chain is irreducible and aperiodic (period 1), which
/// for a finite chain is equivalent to ergodicity.
#[must_use]
pub fn is_ergodic(chain: &MarkovChain) -> bool {
    is_irreducible(chain) && period(chain) == 1
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::MarkovChain;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
    }

    #[test]
    fn single_state_chain() {
        let c = MarkovChain::from_rows(vec![vec![1.0]]).unwrap();
        assert!(is_irreducible(&c));
        assert_eq!(period(&c), 1);
        assert!(is_ergodic(&c));
    }

    #[test]
    fn two_closed_classes_not_irreducible() {
        let c = MarkovChain::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let scc = strongly_connected_components(&c);
        assert_eq!(scc.n_components, 2);
        assert!(!is_irreducible(&c));
    }

    #[test]
    fn transient_plus_absorbing() {
        // 0 → 1 → 1: two SCCs {0}, {1}.
        let c = MarkovChain::from_rows(vec![vec![0.0, 1.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(strongly_connected_components(&c).n_components, 2);
        assert!(!is_irreducible(&c));
    }

    #[test]
    fn deterministic_cycle_has_full_period() {
        // 0 → 1 → 2 → 0.
        let c = MarkovChain::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ])
        .unwrap();
        assert!(is_irreducible(&c));
        assert_eq!(period(&c), 3);
        assert!(!is_ergodic(&c));
    }

    #[test]
    fn bipartite_chain_period_two() {
        let c = MarkovChain::from_rows(vec![
            vec![0.0, 0.5, 0.0, 0.5],
            vec![0.5, 0.0, 0.5, 0.0],
            vec![0.0, 0.5, 0.0, 0.5],
            vec![0.5, 0.0, 0.5, 0.0],
        ])
        .unwrap();
        assert!(is_irreducible(&c));
        assert_eq!(period(&c), 2);
    }

    #[test]
    fn self_loop_forces_aperiodicity() {
        let c = MarkovChain::from_rows(vec![
            vec![0.5, 0.5, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ])
        .unwrap();
        assert!(is_ergodic(&c));
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // A 100k-state ring; recursion would overflow, iteration must not.
        let n = 100_000;
        let mut transitions = Vec::with_capacity(n);
        for i in 0..n {
            transitions.push((i, (i + 1) % n, 1.0));
        }
        let c = MarkovChain::from_transitions(n, &transitions).unwrap();
        assert!(is_irreducible(&c));
        assert_eq!(period(&c), n);
    }

    #[test]
    #[should_panic(expected = "irreducible")]
    fn period_panics_on_reducible() {
        let c = MarkovChain::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let _ = period(&c);
    }

    #[test]
    fn scc_indices_cover_all_states() {
        let c = MarkovChain::from_rows(vec![
            vec![0.5, 0.5, 0.0],
            vec![0.5, 0.5, 0.0],
            vec![0.2, 0.3, 0.5],
        ])
        .unwrap();
        let scc = strongly_connected_components(&c);
        assert_eq!(scc.component.len(), 3);
        assert!(scc.component.iter().all(|&cmp| cmp < scc.n_components));
        // {0,1} communicate; {2} is transient into them.
        assert_eq!(scc.component[0], scc.component[1]);
        assert_ne!(scc.component[0], scc.component[2]);
    }
}
