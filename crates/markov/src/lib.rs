#![forbid(unsafe_code)]
//! Finite discrete-time Markov chains.
//!
//! The paper proves its consistency theorem by constructing two Markov
//! chains — the *suffix-of-previous-and-current-states* chain `C_F`
//! (Fig. 2, `2Δ+1` states) and the concatenation chain `C_{F‖P}` — and
//! reading convergence-opportunity rates off their stationary
//! distributions. This crate provides the general machinery those
//! constructions need:
//!
//! * [`chain::MarkovChain`] — a validated row-stochastic transition
//!   structure (dense or CSR sparse).
//! * [`structure`] — irreducibility (Tarjan SCC), period, ergodicity.
//! * [`stationary`] — stationary distributions via GTH elimination
//!   (exact, O(S³)) and power iteration (sparse-friendly).
//! * [`mixing`] — total-variation distance and ε-mixing times, needed by
//!   the paper's Inequality (47).
//! * [`concentration`] — Chernoff–Hoeffding bounds for Markov chains
//!   (Chung, Lam, Liu & Mitzenmacher 2012, Theorem 3.1), the engine
//!   behind the paper's Inequality (19).
//! * [`hitting`] — expected hitting and return times.
//! * [`walk`] — random-walk sampling with occupancy statistics.
//! * [`race`] / [`lead`] — the exact private-chain-race backends of the
//!   spec-driven experiment layer: capped absorbing-race solves and
//!   finite-horizon lead-distribution truncations, each carrying a
//!   provable truncation-error bound.
//!
//! # Example
//!
//! ```
//! use markov::chain::MarkovChain;
//! use markov::stationary::stationary_gth;
//!
//! // A two-state weather chain.
//! let chain = MarkovChain::from_rows(vec![
//!     vec![0.9, 0.1],
//!     vec![0.5, 0.5],
//! ])?;
//! let pi = stationary_gth(&chain)?;
//! assert!((pi[0] - 5.0 / 6.0).abs() < 1e-12);
//! # Ok::<(), markov::Error>(())
//! ```

pub mod absorption;
pub mod chain;
pub mod concentration;
pub mod hitting;
pub mod lead;
pub mod mixing;
pub mod race;
pub mod stationary;
pub mod structure;
pub mod walk;

mod error;

pub use error::Error;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
