//! Expected hitting and return times.
//!
//! These quantify the paper's convergence-opportunity pattern dynamics:
//! the expected recurrence time of the `HN^{≥Δ}‖H₁N^Δ` state equals
//! `1/π(state) = 1/(ᾱ^{2Δ}α₁)` by Kac's formula, which these routines
//! verify numerically.

use crate::chain::MarkovChain;
use crate::{Error, Result};

/// Solves the dense linear system `A·x = b` by Gaussian elimination with
/// partial pivoting. `A` is consumed.
fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-300 {
            return Err(Error::BadShape {
                message: "singular linear system in hitting-time solve".into(),
            });
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col][col];
        for row in (col + 1)..n {
            let (head, tail) = a.split_at_mut(row);
            let pivot_vals = &head[col];
            let row_vals = &mut tail[0];
            let factor = row_vals[col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for (x, &upper) in row_vals[col..].iter_mut().zip(&pivot_vals[col..]) {
                *x -= factor * upper;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// Expected hitting times `h(v) = E[min{t ≥ 0 : V_t ∈ targets} | V_0 = v]`.
///
/// Solves `h(v) = 0` for targets and `h(v) = 1 + Σ_w P(v,w)·h(w)`
/// otherwise.
///
/// # Errors
///
/// * [`Error::BadShape`] if `targets` is empty or contains an
///   out-of-range state, or if some state cannot reach the target set
///   (singular system).
///
/// ```
/// use markov::chain::MarkovChain;
/// use markov::hitting::expected_hitting_times;
///
/// // Fair coin: from state 0, expected time to reach state 1 is 2.
/// let c = MarkovChain::from_rows(vec![vec![0.5, 0.5], vec![0.0, 1.0]])?;
/// let h = expected_hitting_times(&c, &[1])?;
/// assert!((h[0] - 2.0).abs() < 1e-12);
/// assert_eq!(h[1], 0.0);
/// # Ok::<(), markov::Error>(())
/// ```
pub fn expected_hitting_times(chain: &MarkovChain, targets: &[usize]) -> Result<Vec<f64>> {
    let n = chain.n_states();
    if targets.is_empty() {
        return Err(Error::BadShape {
            message: "target set must be non-empty".into(),
        });
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        if t >= n {
            return Err(Error::StateOutOfRange {
                state: t,
                n_states: n,
            });
        }
        is_target[t] = true;
    }
    // Index the non-target states.
    let free: Vec<usize> = (0..n).filter(|&v| !is_target[v]).collect();
    let index_of: std::collections::BTreeMap<usize, usize> =
        free.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let m = free.len();
    if m == 0 {
        return Ok(vec![0.0; n]);
    }
    // (I - Q)·h = 1 over non-target states.
    let mut a = vec![vec![0.0; m]; m];
    let b = vec![1.0; m];
    for (i, &v) in free.iter().enumerate() {
        a[i][i] += 1.0;
        for (w, p) in chain.successors(v) {
            if let Some(&j) = index_of.get(&w) {
                a[i][j] -= p;
            }
        }
    }
    let h_free = solve_dense(a, b)?;
    let mut h = vec![0.0; n];
    for (i, &v) in free.iter().enumerate() {
        h[v] = h_free[i];
    }
    Ok(h)
}

/// Expected return time to `state`:
/// `r = 1 + Σ_w P(state, w)·h(w)` with `h` the hitting times of `{state}`.
///
/// For an ergodic chain Kac's formula gives `r = 1/π(state)`.
///
/// # Errors
///
/// Same contract as [`expected_hitting_times`].
pub fn expected_return_time(chain: &MarkovChain, state: usize) -> Result<f64> {
    let h = expected_hitting_times(chain, &[state])?;
    let mut r = 1.0;
    for (w, p) in chain.successors(state) {
        r += p * h[w];
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::MarkovChain;
    use crate::stationary::stationary_gth;

    #[test]
    fn hitting_time_geometric() {
        // From 0, each step hits 1 with prob p: expected time 1/p.
        for &p in &[0.1, 0.5, 0.9] {
            let c = MarkovChain::from_rows(vec![vec![1.0 - p, p], vec![0.0, 1.0]]).unwrap();
            let h = expected_hitting_times(&c, &[1]).unwrap();
            assert!((h[0] - 1.0 / p).abs() < 1e-9, "p={p}: {}", h[0]);
        }
    }

    #[test]
    fn hitting_time_symmetric_walk_on_path() {
        // Gambler's ruin on {0,1,2,3} with absorbing 0 and 3... use
        // hitting of {0, 3} from the middle: for a simple random walk on
        // a path of length L, E[time] from position k is k(L-k).
        let l = 5usize;
        let mut t = Vec::new();
        t.push((0usize, 0usize, 1.0));
        t.push((l, l, 1.0));
        for i in 1..l {
            t.push((i, i - 1, 0.5));
            t.push((i, i + 1, 0.5));
        }
        let c = MarkovChain::from_transitions(l + 1, &t).unwrap();
        let h = expected_hitting_times(&c, &[0, l]).unwrap();
        for (k, &hk) in h.iter().enumerate().take(l).skip(1) {
            let expected = (k * (l - k)) as f64;
            assert!((hk - expected).abs() < 1e-9, "k={k}: {hk} vs {expected}");
        }
    }

    #[test]
    fn kac_formula_on_random_ergodic_chain() {
        let c = MarkovChain::from_rows(vec![
            vec![0.2, 0.5, 0.3],
            vec![0.4, 0.1, 0.5],
            vec![0.25, 0.25, 0.5],
        ])
        .unwrap();
        let pi = stationary_gth(&c).unwrap();
        for (s, &pis) in pi.iter().enumerate() {
            let r = expected_return_time(&c, s).unwrap();
            assert!(
                (r - 1.0 / pis).abs() < 1e-9,
                "state {s}: return {r} vs 1/π {}",
                1.0 / pis
            );
        }
    }

    #[test]
    fn rejects_empty_targets() {
        let c = MarkovChain::from_rows(vec![vec![1.0]]).unwrap();
        assert!(expected_hitting_times(&c, &[]).is_err());
    }

    #[test]
    fn rejects_out_of_range_target() {
        let c = MarkovChain::from_rows(vec![vec![1.0]]).unwrap();
        assert!(matches!(
            expected_hitting_times(&c, &[3]),
            Err(Error::StateOutOfRange { .. })
        ));
    }

    #[test]
    fn unreachable_target_is_singular() {
        // State 1 absorbing, target {0} unreachable from 1.
        let c = MarkovChain::from_rows(vec![vec![0.5, 0.5], vec![0.0, 1.0]]).unwrap();
        assert!(expected_hitting_times(&c, &[0]).is_err());
    }

    #[test]
    fn all_states_targets() {
        let c = MarkovChain::from_rows(vec![vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        let h = expected_hitting_times(&c, &[0, 1]).unwrap();
        assert_eq!(h, vec![0.0, 0.0]);
    }
}
