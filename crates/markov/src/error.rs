use std::fmt;

/// Error type for Markov-chain construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A transition row does not sum to one (within tolerance) or holds a
    /// negative / non-finite entry.
    NotStochastic {
        /// Index of the offending row.
        row: usize,
        /// The row sum that was observed.
        sum: f64,
    },
    /// A structural requirement (irreducibility, aperiodicity) is not met.
    NotErgodic {
        /// Human-readable description of the failed requirement.
        reason: String,
    },
    /// The chain is empty or dimensions are inconsistent.
    BadShape {
        /// Human-readable description.
        message: String,
    },
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Procedure name (e.g. `"power_iteration"`).
        procedure: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Residual at the time of giving up.
        residual: f64,
    },
    /// A state index was out of range.
    StateOutOfRange {
        /// The offending index.
        state: usize,
        /// Number of states in the chain.
        n_states: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotStochastic { row, sum } => {
                write!(f, "row {row} is not stochastic (sum = {sum})")
            }
            Error::NotErgodic { reason } => write!(f, "chain is not ergodic: {reason}"),
            Error::BadShape { message } => write!(f, "bad shape: {message}"),
            Error::NoConvergence {
                procedure,
                iterations,
                residual,
            } => write!(
                f,
                "`{procedure}` did not converge after {iterations} iterations (residual {residual:e})"
            ),
            Error::StateOutOfRange { state, n_states } => {
                write!(f, "state {state} out of range for chain with {n_states} states")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::NotStochastic { row: 3, sum: 0.9 }
            .to_string()
            .contains("row 3"));
        assert!(Error::NotErgodic {
            reason: "two closed classes".into()
        }
        .to_string()
        .contains("ergodic"));
        assert!(Error::BadShape {
            message: "empty".into()
        }
        .to_string()
        .contains("empty"));
        assert!(Error::StateOutOfRange {
            state: 9,
            n_states: 4
        }
        .to_string()
        .contains("out of range"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
