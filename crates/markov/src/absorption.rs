//! Absorbing-chain analysis: fundamental matrix, absorption
//! probabilities and expected times to absorption.
//!
//! The private-chain attack race (adversary `z` blocks behind, each new
//! block honest with probability `µ'` or adversarial with `ν'`) is a
//! birth–death chain absorbed at "caught up"; these routines compute
//! Nakamoto-style catch-up probabilities exactly on the truncated chain
//! (see `consistency_core::catchup`).

use crate::chain::MarkovChain;
use crate::{Error, Result};

/// Decomposition of a chain into transient and absorbing states.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsorbingAnalysis {
    /// Indices of transient states (chain order).
    pub transient: Vec<usize>,
    /// Indices of absorbing states (chain order).
    pub absorbing: Vec<usize>,
    /// `expected_steps[i]` — expected steps to absorption from
    /// `transient[i]` (row sums of the fundamental matrix).
    pub expected_steps: Vec<f64>,
    /// `absorption_prob[i][j]` — probability that `transient[i]` is
    /// eventually absorbed in `absorbing[j]`.
    pub absorption_prob: Vec<Vec<f64>>,
}

impl AbsorbingAnalysis {
    /// Absorption probability from a transient state into an absorbing
    /// state, addressed by *chain* indices.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not transient or `into` not absorbing.
    #[must_use]
    pub fn probability(&self, from: usize, into: usize) -> f64 {
        let i = self
            .transient
            .iter()
            .position(|&s| s == from)
            .expect("`from` must be a transient state");
        let j = self
            .absorbing
            .iter()
            .position(|&s| s == into)
            .expect("`into` must be an absorbing state");
        self.absorption_prob[i][j]
    }

    /// Expected steps to absorption from a transient state (chain index).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not transient.
    #[must_use]
    pub fn steps_from(&self, from: usize) -> f64 {
        let i = self
            .transient
            .iter()
            .position(|&s| s == from)
            .expect("`from` must be a transient state");
        self.expected_steps[i]
    }
}

/// Analyses an absorbing chain. A state is *absorbing* iff its only
/// transition is a self-loop with probability 1.
///
/// Solves `(I − Q)·N = I` column-by-column with Gaussian elimination,
/// where `Q` is the transient-to-transient block.
///
/// # Errors
///
/// * [`Error::NotErgodic`] if no state is absorbing or no state is
///   transient.
/// * [`Error::BadShape`] if some transient state cannot reach any
///   absorbing state (the system is singular).
///
/// ```
/// use markov::chain::MarkovChain;
/// use markov::absorption::analyze;
///
/// // Gambler's ruin on {0,1,2} with absorbing 0 and 2, fair coin.
/// let chain = MarkovChain::from_rows(vec![
///     vec![1.0, 0.0, 0.0],
///     vec![0.5, 0.0, 0.5],
///     vec![0.0, 0.0, 1.0],
/// ])?;
/// let a = analyze(&chain)?;
/// assert!((a.probability(1, 0) - 0.5).abs() < 1e-12);
/// assert!((a.steps_from(1) - 1.0).abs() < 1e-12);
/// # Ok::<(), markov::Error>(())
/// ```
pub fn analyze(chain: &MarkovChain) -> Result<AbsorbingAnalysis> {
    let n = chain.n_states();
    let is_absorbing: Vec<bool> = (0..n)
        .map(|i| {
            let mut succ = chain.successors(i);
            matches!(succ.next(), Some((j, p)) if j == i && (p - 1.0).abs() < 1e-12)
                && succ.next().is_none()
        })
        .collect();
    let absorbing: Vec<usize> = (0..n).filter(|&i| is_absorbing[i]).collect();
    let transient: Vec<usize> = (0..n).filter(|&i| !is_absorbing[i]).collect();
    if absorbing.is_empty() {
        return Err(Error::NotErgodic {
            reason: "no absorbing state".into(),
        });
    }
    if transient.is_empty() {
        return Err(Error::NotErgodic {
            reason: "no transient state".into(),
        });
    }
    let m = transient.len();
    let index_of: std::collections::BTreeMap<usize, usize> =
        transient.iter().enumerate().map(|(i, &s)| (s, i)).collect();

    // Build I − Q and the R block (transient → absorbing one-step mass).
    let mut a = vec![vec![0.0; m]; m];
    let mut r = vec![vec![0.0; absorbing.len()]; m];
    for (i, &s) in transient.iter().enumerate() {
        a[i][i] = 1.0;
        for (t, p) in chain.successors(s) {
            if let Some(&j) = index_of.get(&t) {
                a[i][j] -= p;
            } else {
                let j = absorbing.iter().position(|&x| x == t).expect("partition");
                r[i][j] += p;
            }
        }
    }

    // LU-factorise A once (partial pivoting), then solve for each RHS.
    let mut lu = a;
    let mut perm: Vec<usize> = (0..m).collect();
    for col in 0..m {
        let pivot_row = (col..m)
            .max_by(|&x, &y| {
                lu[x][col]
                    .abs()
                    .partial_cmp(&lu[y][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        if lu[pivot_row][col].abs() < 1e-300 {
            return Err(Error::BadShape {
                message: "transient block singular: some state cannot be absorbed".into(),
            });
        }
        lu.swap(col, pivot_row);
        perm.swap(col, pivot_row);
        let pivot = lu[col][col];
        for row in (col + 1)..m {
            let (head, tail) = lu.split_at_mut(row);
            let pivot_vals = &head[col];
            let row_vals = &mut tail[0];
            let factor = row_vals[col] / pivot;
            row_vals[col] = factor;
            for (x, &upper) in row_vals[col + 1..].iter_mut().zip(&pivot_vals[col + 1..]) {
                *x -= factor * upper;
            }
        }
    }
    let solve = |rhs: &[f64]| -> Vec<f64> {
        // Forward substitution on the permuted RHS.
        let mut y: Vec<f64> = perm.iter().map(|&i| rhs[i]).collect();
        for row in 1..m {
            for k in 0..row {
                y[row] -= lu[row][k] * y[k];
            }
        }
        // Back substitution.
        let mut x = y;
        for row in (0..m).rev() {
            for k in (row + 1)..m {
                x[row] -= lu[row][k] * x[k];
            }
            x[row] /= lu[row][row];
        }
        x
    };

    // Expected steps: N·1 solves (I − Q)t = 1.
    let expected_steps = solve(&vec![1.0; m]);
    // Absorption probabilities: columns of B = N·R, i.e. (I−Q)b_j = r_j.
    let mut absorption_prob = vec![vec![0.0; absorbing.len()]; m];
    for j in 0..absorbing.len() {
        let rhs: Vec<f64> = (0..m).map(|i| r[i][j]).collect();
        let col = solve(&rhs);
        for i in 0..m {
            absorption_prob[i][j] = col[i];
        }
    }

    Ok(AbsorbingAnalysis {
        transient,
        absorbing,
        expected_steps,
        absorption_prob,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::MarkovChain;

    /// Gambler's ruin on {0..l} with win probability `p`.
    fn ruin_chain(l: usize, p: f64) -> MarkovChain {
        let mut t = vec![(0usize, 0usize, 1.0), (l, l, 1.0)];
        for i in 1..l {
            t.push((i, i + 1, p));
            t.push((i, i - 1, 1.0 - p));
        }
        MarkovChain::from_transitions(l + 1, &t).unwrap()
    }

    #[test]
    fn fair_ruin_probabilities_linear() {
        let l = 6;
        let chain = ruin_chain(l, 0.5);
        let a = analyze(&chain).unwrap();
        for k in 1..l {
            // P[absorbed at l | start k] = k/l for a fair walk.
            let p_win = a.probability(k, l);
            assert!(
                (p_win - k as f64 / l as f64).abs() < 1e-10,
                "k={k}: {p_win}"
            );
            // Expected steps = k(l−k).
            let steps = a.steps_from(k);
            assert!(
                (steps - (k * (l - k)) as f64).abs() < 1e-9,
                "k={k}: {steps}"
            );
        }
    }

    #[test]
    fn biased_ruin_matches_closed_form() {
        let l = 8;
        let p = 0.3f64;
        let chain = ruin_chain(l, p);
        let a = analyze(&chain).unwrap();
        let r = (1.0 - p) / p;
        for k in 1..l {
            let expected = (r.powi(k as i32) - 1.0) / (r.powi(l as i32) - 1.0);
            let got = a.probability(k, l);
            assert!((got - expected).abs() < 1e-10, "k={k}: {got} vs {expected}");
        }
    }

    #[test]
    fn absorption_rows_sum_to_one() {
        let chain = ruin_chain(5, 0.42);
        let a = analyze(&chain).unwrap();
        for row in &a.absorption_prob {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_chain_without_absorbing_state() {
        let c = MarkovChain::from_rows(vec![vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        assert!(matches!(analyze(&c), Err(Error::NotErgodic { .. })));
    }

    #[test]
    fn rejects_all_absorbing() {
        let c = MarkovChain::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(analyze(&c), Err(Error::NotErgodic { .. })));
    }

    #[test]
    fn unreachable_absorber_is_singular() {
        // 1 ↔ 2 closed among themselves; absorber 0 unreachable.
        let c = MarkovChain::from_rows(vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.0, 1.0, 0.0],
        ])
        .unwrap();
        assert!(matches!(analyze(&c), Err(Error::BadShape { .. })));
    }

    #[test]
    fn single_transient_state() {
        let c = MarkovChain::from_rows(vec![vec![0.25, 0.75], vec![0.0, 1.0]]).unwrap();
        let a = analyze(&c).unwrap();
        // Geometric escape: expected steps 1/0.75.
        assert!((a.steps_from(0) - 4.0 / 3.0).abs() < 1e-12);
        assert!((a.probability(0, 1) - 1.0).abs() < 1e-12);
    }
}
