//! Stationary distributions.
//!
//! Two solvers with different trade-offs (both benchmarked in
//! `consistency-bench`):
//!
//! * [`stationary_gth`] — the Grassmann–Taksar–Heyman elimination, a
//!   subtraction-free variant of Gaussian elimination that is
//!   backward-stable for stochastic matrices. O(S³) time, O(S²) space;
//!   the reference answer for chains up to a few thousand states.
//! * [`stationary_power`] — power iteration on the CSR matrix; O(nnz)
//!   per step, preferred for the paper's suffix chain at large Δ where
//!   the chain is huge but has ≤ 2 transitions per state.

use crate::chain::MarkovChain;
use crate::{Error, Result};

/// Configuration for [`stationary_power`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Convergence threshold on the L1 change per step.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Damping: with probability `1 − damping` stay put. `0.0` disables.
    /// A small positive value (e.g. `0.5`) makes periodic chains converge
    /// to the same stationary distribution without changing it.
    pub damping: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            tol: 1e-13,
            max_iter: 1_000_000,
            damping: 0.0,
        }
    }
}

/// Computes the stationary distribution by GTH elimination.
///
/// Works for any irreducible chain (periodic or not) and involves no
/// subtractions, so the result is accurate to a few ulps even for badly
/// conditioned transition probabilities (e.g. `ᾱ^Δ ≈ 1e-300`).
///
/// # Errors
///
/// * [`Error::NotErgodic`] if the chain is not irreducible (the
///   stationary distribution would not be unique).
///
/// ```
/// use markov::chain::MarkovChain;
/// use markov::stationary::stationary_gth;
/// let chain = MarkovChain::from_rows(vec![vec![0.5, 0.5], vec![0.25, 0.75]])?;
/// let pi = stationary_gth(&chain)?;
/// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-14);
/// # Ok::<(), markov::Error>(())
/// ```
pub fn stationary_gth(chain: &MarkovChain) -> Result<Vec<f64>> {
    if !crate::structure::is_irreducible(chain) {
        return Err(Error::NotErgodic {
            reason: "chain is reducible; stationary distribution not unique".into(),
        });
    }
    let n = chain.n_states();
    let mut p = chain.to_dense();

    // GTH elimination: fold states n-1, n-2, …, 1 into the rest.
    // For each eliminated state k, scale the incoming column by the
    // escape mass S = Σ_{j<k} P[k][j], then redistribute k's throughput:
    // P[i][j] += (P[i][k]/S)·P[k][j]. All operations are additive —
    // no cancellation — which is what makes GTH backward-stable.
    for k in (1..n).rev() {
        let escape: f64 = p[k][..k].iter().sum();
        if escape <= 0.0 {
            // Numerically unreachable for an irreducible chain, but guard
            // against pathological underflow.
            return Err(Error::NoConvergence {
                procedure: "gth",
                iterations: n - k,
                residual: escape,
            });
        }
        let (head, tail) = p.split_at_mut(k);
        let pk = &tail[0];
        for row in head.iter_mut() {
            row[k] /= escape;
            let pik = row[k];
            if pik == 0.0 {
                continue;
            }
            for (x, &y) in row[..k].iter_mut().zip(&pk[..k]) {
                *x += pik * y;
            }
        }
    }

    // Back-substitution.
    let mut pi = vec![0.0; n];
    pi[0] = 1.0;
    for k in 1..n {
        let mut acc = 0.0;
        for i in 0..k {
            acc += pi[i] * p[i][k];
        }
        pi[k] = acc;
    }
    let total: f64 = pi.iter().sum();
    for x in &mut pi {
        *x /= total;
    }
    Ok(pi)
}

/// Computes the stationary distribution by damped power iteration from
/// the uniform distribution.
///
/// # Errors
///
/// * [`Error::NoConvergence`] if the L1 step change stays above
///   `config.tol` for `config.max_iter` iterations (periodic chains with
///   `damping = 0.0` will do this; set a positive damping).
pub fn stationary_power(chain: &MarkovChain, config: PowerConfig) -> Result<Vec<f64>> {
    let mut dist = chain.uniform_distribution();
    let mut residual = f64::INFINITY;
    for _ in 0..config.max_iter {
        let mut next = chain.step(&dist);
        if config.damping > 0.0 {
            let keep = config.damping;
            for (nx, &cur) in next.iter_mut().zip(dist.iter()) {
                *nx = keep * *nx + (1.0 - keep) * cur;
            }
        }
        residual = next
            .iter()
            .zip(dist.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        dist = next;
        if residual <= config.tol {
            // Renormalise away drift.
            let total: f64 = dist.iter().sum();
            for x in &mut dist {
                *x /= total;
            }
            return Ok(dist);
        }
    }
    Err(Error::NoConvergence {
        procedure: "power_iteration",
        iterations: config.max_iter,
        residual,
    })
}

/// Verifies `π P = π` and `Σπ = 1` within `tol`; returns the maximum
/// violation. Useful in tests and in the paper's closed-form checks.
pub fn stationarity_residual(chain: &MarkovChain, pi: &[f64]) -> f64 {
    assert_eq!(pi.len(), chain.n_states(), "distribution length mismatch");
    let stepped = chain.step(pi);
    let balance: f64 = stepped
        .iter()
        .zip(pi.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    let mass = (pi.iter().sum::<f64>() - 1.0).abs();
    balance.max(mass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::MarkovChain;

    fn weather() -> MarkovChain {
        MarkovChain::from_rows(vec![vec![0.9, 0.1], vec![0.5, 0.5]]).unwrap()
    }

    #[test]
    fn gth_two_state_closed_form() {
        // π = (q, p)/(p+q) for rows [[1-p, p], [q, 1-q]].
        let pi = stationary_gth(&weather()).unwrap();
        assert!((pi[0] - 5.0 / 6.0).abs() < 1e-14);
        assert!((pi[1] - 1.0 / 6.0).abs() < 1e-14);
    }

    #[test]
    fn gth_rejects_reducible() {
        let c = MarkovChain::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(stationary_gth(&c), Err(Error::NotErgodic { .. })));
    }

    #[test]
    fn power_matches_gth() {
        let c = MarkovChain::from_rows(vec![
            vec![0.2, 0.3, 0.5],
            vec![0.1, 0.8, 0.1],
            vec![0.4, 0.4, 0.2],
        ])
        .unwrap();
        let a = stationary_gth(&c).unwrap();
        let b = stationary_power(&c, PowerConfig::default()).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
    }

    #[test]
    fn power_periodic_needs_damping() {
        let ring = MarkovChain::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ])
        .unwrap();
        // Uniform start on a ring is already stationary, so perturb via a
        // 4-state bipartite chain instead.
        let bipartite = MarkovChain::from_rows(vec![
            vec![0.0, 0.9, 0.0, 0.1],
            vec![0.8, 0.0, 0.2, 0.0],
            vec![0.0, 0.6, 0.0, 0.4],
            vec![0.7, 0.0, 0.3, 0.0],
        ])
        .unwrap();
        let damped = PowerConfig {
            damping: 0.5,
            ..PowerConfig::default()
        };
        let via_power = stationary_power(&bipartite, damped).unwrap();
        let via_gth = stationary_gth(&bipartite).unwrap();
        for (x, y) in via_power.iter().zip(via_gth.iter()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
        // Ring sanity: GTH handles the periodic chain directly.
        let pi_ring = stationary_gth(&ring).unwrap();
        for x in pi_ring {
            assert!((x - 1.0 / 3.0).abs() < 1e-14);
        }
    }

    #[test]
    fn power_reports_no_convergence() {
        // The uniform start is far from stationary for the weather chain,
        // so two iterations with zero tolerance cannot converge.
        let cfg = PowerConfig {
            tol: 0.0,
            max_iter: 2,
            damping: 0.0,
        };
        let r = stationary_power(&weather(), cfg);
        assert!(matches!(r, Err(Error::NoConvergence { .. })));
    }

    #[test]
    fn residual_detects_wrong_distribution() {
        let c = weather();
        let pi = stationary_gth(&c).unwrap();
        assert!(stationarity_residual(&c, &pi) < 1e-14);
        let wrong = vec![0.5, 0.5];
        assert!(stationarity_residual(&c, &wrong) > 0.1);
    }

    #[test]
    fn gth_handles_tiny_probabilities() {
        // Transitions spanning 250 orders of magnitude: GTH must stay
        // accurate (no subtractive cancellation).
        let eps = 1e-250;
        let c = MarkovChain::from_rows(vec![vec![1.0 - eps, eps], vec![0.5, 0.5]]).unwrap();
        let pi = stationary_gth(&c).unwrap();
        // Detailed balance for 2 states: π0·eps = π1·0.5.
        let ratio = pi[1] / pi[0];
        assert!(
            (ratio / (eps / 0.5) - 1.0).abs() < 1e-12,
            "ratio {ratio} vs expected {}",
            eps / 0.5
        );
    }

    #[test]
    fn gth_large_random_chain_residual() {
        use probability::rng::{RandomSource, Xoshiro256PlusPlus};
        let n = 60;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2024);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let raw: Vec<f64> = (0..n).map(|_| rng.next_f64() + 1e-3).collect();
                let s: f64 = raw.iter().sum();
                raw.into_iter().map(|x| x / s).collect()
            })
            .collect();
        let c = MarkovChain::from_rows(rows).unwrap();
        let pi = stationary_gth(&c).unwrap();
        assert!(stationarity_residual(&c, &pi) < 1e-12);
    }
}

// Deterministic randomized sweeps (in-tree RNG; proptest is unavailable
// in the offline build environment).
#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::chain::MarkovChain;
    use probability::rng::{RandomSource, SplitMix64};

    fn positive_chain(rng: &mut SplitMix64, n: usize) -> MarkovChain {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let row: Vec<f64> = (0..n).map(|_| 0.05 + rng.next_f64() * 0.95).collect();
                let s: f64 = row.iter().sum();
                row.into_iter().map(|x| x / s).collect()
            })
            .collect();
        MarkovChain::from_rows(rows).expect("stochastic")
    }

    #[test]
    fn gth_output_is_stationary() {
        let mut rng = SplitMix64::new(0x57_01);
        for _ in 0..128 {
            let chain = positive_chain(&mut rng, 5);
            let pi = stationary_gth(&chain).unwrap();
            assert!(stationarity_residual(&chain, &pi) < 1e-11);
            assert!(pi.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn power_agrees_with_gth() {
        let mut rng = SplitMix64::new(0x57_02);
        for _ in 0..128 {
            let chain = positive_chain(&mut rng, 4);
            let a = stationary_gth(&chain).unwrap();
            let b = stationary_power(&chain, PowerConfig::default()).unwrap();
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-9, "gth/power disagree: {x} vs {y}");
            }
        }
    }
}
