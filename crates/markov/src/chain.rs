//! The [`MarkovChain`] type: a validated row-stochastic transition matrix
//! in compressed sparse row (CSR) form.
//!
//! CSR is the right default here: the paper's suffix chain `C_F` has
//! `2Δ+1` states but only ≤ 2 outgoing edges per state, so dense storage
//! would waste O(Δ²) memory for no benefit.

use crate::{Error, Result};

/// Row-sum tolerance accepted by [`MarkovChain`] validation.
pub const STOCHASTIC_TOL: f64 = 1e-9;

/// A finite discrete-time Markov chain over states `0..n_states`.
///
/// Rows of the transition matrix are validated to be non-negative and to
/// sum to 1 within [`STOCHASTIC_TOL`]; rows are then exactly renormalised
/// so that downstream linear algebra sees sums of exactly 1.0 (to f64
/// rounding).
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    n_states: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl MarkovChain {
    /// Builds a chain from dense rows.
    ///
    /// # Errors
    ///
    /// * [`Error::BadShape`] for an empty matrix or ragged rows.
    /// * [`Error::NotStochastic`] when a row has a negative/non-finite
    ///   entry or does not sum to 1 within [`STOCHASTIC_TOL`].
    ///
    /// ```
    /// use markov::chain::MarkovChain;
    /// let c = MarkovChain::from_rows(vec![vec![0.5, 0.5], vec![1.0, 0.0]])?;
    /// assert_eq!(c.n_states(), 2);
    /// # Ok::<(), markov::Error>(())
    /// ```
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        let n = rows.len();
        if n == 0 {
            return Err(Error::BadShape {
                message: "chain must have at least one state".into(),
            });
        }
        let mut builder = MarkovChainBuilder::new(n);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(Error::BadShape {
                    message: format!("row {i} has length {} but chain has {n} states", row.len()),
                });
            }
            for (j, &p) in row.iter().enumerate() {
                if p != 0.0 {
                    builder.add(i, j, p)?;
                }
            }
        }
        builder.build()
    }

    /// Builds a chain from `(from, to, probability)` triplets.
    ///
    /// Duplicate `(from, to)` pairs are accumulated.
    ///
    /// # Errors
    ///
    /// Same contract as [`MarkovChain::from_rows`], plus
    /// [`Error::StateOutOfRange`] for indices `≥ n_states`.
    pub fn from_transitions(n_states: usize, transitions: &[(usize, usize, f64)]) -> Result<Self> {
        let mut builder = MarkovChainBuilder::new(n_states);
        for &(i, j, p) in transitions {
            builder.add(i, j, p)?;
        }
        builder.build()
    }

    /// Number of states.
    #[inline]
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of stored (non-zero) transitions.
    #[inline]
    #[must_use]
    pub fn n_transitions(&self) -> usize {
        self.values.len()
    }

    /// Transition probability `P(i → j)`; zero if not stored.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n_states && j < self.n_states, "state out of range");
        self.successors(i)
            .find(|&(col, _)| col == j)
            .map_or(0.0, |(_, p)| p)
    }

    /// Iterator over `(successor, probability)` pairs of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n_states`.
    pub fn successors(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.n_states, "state out of range");
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// One step of distribution evolution: returns `dist · P`.
    ///
    /// # Panics
    ///
    /// Panics if `dist.len() != n_states`.
    #[must_use]
    pub fn step(&self, dist: &[f64]) -> Vec<f64> {
        assert_eq!(dist.len(), self.n_states, "distribution length mismatch");
        let mut out = vec![0.0; self.n_states];
        for (i, &mass) in dist.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            for (j, p) in self.successors(i) {
                out[j] += mass * p;
            }
        }
        out
    }

    /// Evolves a distribution `steps` times.
    #[must_use]
    pub fn step_n(&self, dist: &[f64], steps: usize) -> Vec<f64> {
        let mut d = dist.to_vec();
        for _ in 0..steps {
            d = self.step(&d);
        }
        d
    }

    /// The uniform distribution over all states.
    #[must_use]
    pub fn uniform_distribution(&self) -> Vec<f64> {
        vec![1.0 / self.n_states as f64; self.n_states]
    }

    /// A point-mass distribution on `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state ≥ n_states`.
    #[must_use]
    pub fn point_distribution(&self, state: usize) -> Vec<f64> {
        assert!(state < self.n_states, "state out of range");
        let mut d = vec![0.0; self.n_states];
        d[state] = 1.0;
        d
    }

    /// Materialises the dense transition matrix (row-major). Intended for
    /// small chains (tests, GTH elimination).
    #[must_use]
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; self.n_states]; self.n_states];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, p) in self.successors(i) {
                row[j] += p;
            }
        }
        m
    }

    /// Adjacency view: successors with non-zero probability, used by the
    /// structural algorithms.
    pub(crate) fn successor_indices(&self, i: usize) -> &[usize] {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        &self.col_idx[lo..hi]
    }
}

/// Incremental builder for [`MarkovChain`].
///
/// ```
/// use markov::chain::MarkovChainBuilder;
/// let mut b = MarkovChainBuilder::new(2);
/// b.add(0, 1, 1.0)?;
/// b.add(1, 0, 0.25)?;
/// b.add(1, 1, 0.75)?;
/// let chain = b.build()?;
/// assert_eq!(chain.n_transitions(), 3);
/// # Ok::<(), markov::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct MarkovChainBuilder {
    n_states: usize,
    rows: Vec<Vec<(usize, f64)>>,
}

impl MarkovChainBuilder {
    /// Creates a builder for a chain with `n_states` states.
    #[must_use]
    pub fn new(n_states: usize) -> Self {
        MarkovChainBuilder {
            n_states,
            rows: vec![Vec::new(); n_states],
        }
    }

    /// Adds probability mass `p` to the transition `from → to`
    /// (accumulating over repeated calls).
    ///
    /// # Errors
    ///
    /// * [`Error::StateOutOfRange`] for indices `≥ n_states`.
    /// * [`Error::NotStochastic`] for negative or non-finite `p`.
    pub fn add(&mut self, from: usize, to: usize, p: f64) -> Result<&mut Self> {
        if from >= self.n_states {
            return Err(Error::StateOutOfRange {
                state: from,
                n_states: self.n_states,
            });
        }
        if to >= self.n_states {
            return Err(Error::StateOutOfRange {
                state: to,
                n_states: self.n_states,
            });
        }
        if !(p >= 0.0) || !p.is_finite() {
            return Err(Error::NotStochastic { row: from, sum: p });
        }
        if let Some(entry) = self.rows[from].iter_mut().find(|(c, _)| *c == to) {
            entry.1 += p;
        } else {
            self.rows[from].push((to, p));
        }
        Ok(self)
    }

    /// Validates and finalises the chain.
    ///
    /// # Errors
    ///
    /// * [`Error::BadShape`] if `n_states == 0`.
    /// * [`Error::NotStochastic`] if any row sum deviates from 1 by more
    ///   than [`STOCHASTIC_TOL`].
    pub fn build(self) -> Result<MarkovChain> {
        if self.n_states == 0 {
            return Err(Error::BadShape {
                message: "chain must have at least one state".into(),
            });
        }
        let mut row_ptr = Vec::with_capacity(self.n_states + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for (i, mut row) in self.rows.into_iter().enumerate() {
            let sum: f64 = row.iter().map(|&(_, p)| p).sum();
            if (sum - 1.0).abs() > STOCHASTIC_TOL {
                return Err(Error::NotStochastic { row: i, sum });
            }
            row.sort_unstable_by_key(|&(c, _)| c);
            for (c, p) in row {
                // Exact renormalisation so downstream sums are 1.0.
                col_idx.push(c);
                values.push(p / sum);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(MarkovChain {
            n_states: self.n_states,
            row_ptr,
            col_idx,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> MarkovChain {
        MarkovChain::from_rows(vec![vec![0.9, 0.1], vec![0.5, 0.5]]).unwrap()
    }

    #[test]
    fn from_rows_valid() {
        let c = two_state();
        assert_eq!(c.n_states(), 2);
        assert_eq!(c.n_transitions(), 4);
        assert_eq!(c.prob(0, 1), 0.1);
        assert_eq!(c.prob(1, 0), 0.5);
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            MarkovChain::from_rows(vec![]),
            Err(Error::BadShape { .. })
        ));
    }

    #[test]
    fn rejects_ragged() {
        let e = MarkovChain::from_rows(vec![vec![1.0], vec![0.5, 0.5]]);
        assert!(matches!(e, Err(Error::BadShape { .. })));
    }

    #[test]
    fn rejects_non_stochastic_row() {
        let e = MarkovChain::from_rows(vec![vec![0.5, 0.4], vec![0.5, 0.5]]);
        assert!(matches!(e, Err(Error::NotStochastic { row: 0, .. })));
    }

    #[test]
    fn rejects_negative_probability() {
        let e = MarkovChain::from_rows(vec![vec![1.5, -0.5], vec![0.5, 0.5]]);
        assert!(matches!(e, Err(Error::NotStochastic { .. })));
    }

    #[test]
    fn builder_accumulates_duplicates() {
        let mut b = MarkovChainBuilder::new(1);
        b.add(0, 0, 0.4).unwrap();
        b.add(0, 0, 0.6).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.prob(0, 0), 1.0);
        assert_eq!(c.n_transitions(), 1);
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = MarkovChainBuilder::new(2);
        assert!(matches!(
            b.add(2, 0, 1.0),
            Err(Error::StateOutOfRange { state: 2, .. })
        ));
        assert!(matches!(
            b.add(0, 5, 1.0),
            Err(Error::StateOutOfRange { state: 5, .. })
        ));
    }

    #[test]
    fn step_preserves_total_mass() {
        let c = two_state();
        let d0 = c.point_distribution(0);
        let d1 = c.step(&d0);
        assert!((d1.iter().sum::<f64>() - 1.0).abs() < 1e-15);
        assert_eq!(d1, vec![0.9, 0.1]);
    }

    #[test]
    fn step_n_composes() {
        let c = two_state();
        let d = c.uniform_distribution();
        let a = c.step(&c.step(&d));
        let b = c.step_n(&d, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn to_dense_round_trip() {
        let rows = vec![vec![0.25, 0.75], vec![1.0, 0.0]];
        let c = MarkovChain::from_rows(rows.clone()).unwrap();
        let dense = c.to_dense();
        for i in 0..2 {
            for j in 0..2 {
                assert!((dense[i][j] - rows[i][j]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn successors_sorted_by_column() {
        let c = MarkovChain::from_transitions(
            3,
            &[
                (0, 2, 0.5),
                (0, 1, 0.25),
                (0, 0, 0.25),
                (1, 1, 1.0),
                (2, 2, 1.0),
            ],
        )
        .unwrap();
        let succ: Vec<usize> = c.successors(0).map(|(j, _)| j).collect();
        assert_eq!(succ, vec![0, 1, 2]);
    }

    #[test]
    fn renormalisation_within_tolerance() {
        // Row sums to 1 + 5e-10: accepted and renormalised to exactly 1.
        let c = MarkovChain::from_rows(vec![vec![0.5 + 5e-10, 0.5], vec![0.5, 0.5]]).unwrap();
        let sum: f64 = c.successors(0).map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-15);
    }

    #[test]
    fn point_distribution_is_unit_vector() {
        let c = two_state();
        assert_eq!(c.point_distribution(1), vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "state out of range")]
    fn prob_panics_out_of_range() {
        let _ = two_state().prob(0, 7);
    }
}

// Deterministic randomized sweeps (in-tree RNG; proptest is unavailable
// in the offline build environment).
#[cfg(test)]
mod randomized_tests {
    use super::*;
    use probability::rng::{RandomSource, SplitMix64};

    fn random_chain(rng: &mut SplitMix64, max_states: u64) -> MarkovChain {
        let n = rng.next_range(1, max_states) as usize;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let row: Vec<f64> = (0..n).map(|_| 0.01 + rng.next_f64() * 0.99).collect();
                let s: f64 = row.iter().sum();
                row.into_iter().map(|x| x / s).collect()
            })
            .collect();
        MarkovChain::from_rows(rows).expect("normalised rows are stochastic")
    }

    #[test]
    fn step_preserves_mass() {
        let mut rng = SplitMix64::new(0xC4_01);
        for _ in 0..256 {
            let chain = random_chain(&mut rng, 8);
            let d = chain.uniform_distribution();
            let d2 = chain.step(&d);
            let total: f64 = d2.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "mass not preserved: {total}");
            assert!(d2.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn dense_rows_stochastic() {
        let mut rng = SplitMix64::new(0xC4_02);
        for _ in 0..256 {
            let chain = random_chain(&mut rng, 6);
            for row in chain.to_dense() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "row not stochastic: {s}");
            }
        }
    }
}
