//! Chernoff–Hoeffding bounds for Markov chains.
//!
//! Implements Theorem 3.1 of Chung, Lam, Liu & Mitzenmacher,
//! *"Chernoff–Hoeffding Bounds for Markov Chains: Generalized and
//! Simplified"* (2012), exactly as invoked by the paper's Inequality (47):
//!
//! ```text
//! P[X ≤ (1−δ)·µT] ≤ c·‖φ‖_π·exp(−δ²·µT / (72·τ(1/8)))
//! P[X ≥ (1+δ)·µT] ≤ c·‖φ‖_π·exp(−δ²·µT / (72·τ(1/8)))
//! ```
//!
//! where `X = Σ f_t(V_t)` is an occupancy sum over a `T`-step walk,
//! `µ = E_π f`, `τ` the 1/8-mixing time, and `φ` the initial
//! distribution.

use crate::{Error, Result};

/// The constant `c` of Chung et al.'s Theorem 3.1. The theorem only
/// asserts existence of a universal constant; we expose it explicitly so
/// experiments can report the bound they actually evaluated.
pub const CHUNG_ET_AL_CONSTANT: f64 = 1.0;

/// π-norm of an initial distribution `φ`:
/// `‖φ‖_π = √( Σ_v φ(v)² / π(v) )`.
///
/// Equals 1 when `φ = π` and `1/√π(v)` for a point mass on `v`.
///
/// # Panics
///
/// Panics if lengths differ or if some `π(v) ≤ 0` where `φ(v) > 0`.
///
/// ```
/// use markov::concentration::pi_norm;
/// let pi = [0.25, 0.75];
/// assert!((pi_norm(&pi, &pi) - 1.0).abs() < 1e-12);
/// assert!((pi_norm(&[1.0, 0.0], &pi) - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn pi_norm(phi: &[f64], pi: &[f64]) -> f64 {
    assert_eq!(phi.len(), pi.len(), "distribution length mismatch");
    let mut acc = 0.0;
    for (&f, &p) in phi.iter().zip(pi.iter()) {
        if f == 0.0 {
            continue;
        }
        assert!(p > 0.0, "pi must be positive wherever phi is");
        acc += f * f / p;
    }
    acc.sqrt()
}

/// Proposition 1 of the paper: `‖φ‖_π ≤ 1/√(min_v π(v))` for any initial
/// distribution `φ`. Returns that worst-case bound given the minimum
/// stationary probability (which may itself come from a closed form, as
/// in the paper's Proposition 1 for `C_{F‖P}`).
///
/// # Panics
///
/// Panics unless `0 < min_pi ≤ 1`.
#[must_use]
pub fn pi_norm_worst_case(min_pi: f64) -> f64 {
    assert!(min_pi > 0.0 && min_pi <= 1.0, "min_pi must be in (0, 1]");
    1.0 / min_pi.sqrt()
}

/// Log-space variant of [`pi_norm_worst_case`] for stationary minima far
/// below `f64` range (e.g. `min π_{F‖P} = exp(-10⁸)`): given
/// `ln(min π)`, returns `ln ‖φ‖_π ≤ −½·ln(min π)`.
#[must_use]
pub fn ln_pi_norm_worst_case(ln_min_pi: f64) -> f64 {
    assert!(ln_min_pi <= 0.0, "ln(min_pi) must be ≤ 0");
    -0.5 * ln_min_pi
}

/// Parameters of a Chung-et-al. tail-bound evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkBoundParams {
    /// Walk length `T` (number of observed steps).
    pub steps: u64,
    /// Stationary mean `µ = E_π f` of the per-step indicator/function.
    pub stationary_mean: f64,
    /// The 1/8-mixing time `τ` of the chain.
    pub mixing_time_eighth: u64,
    /// `‖φ‖_π` of the initial distribution (see [`pi_norm`]).
    pub phi_pi_norm: f64,
}

impl WalkBoundParams {
    /// Validates the parameter ranges.
    ///
    /// # Errors
    ///
    /// [`Error::BadShape`] when a parameter is out of its domain.
    pub fn validate(&self) -> Result<()> {
        if self.steps == 0 {
            return Err(Error::BadShape {
                message: "walk must have at least one step".into(),
            });
        }
        if !(self.stationary_mean >= 0.0 && self.stationary_mean <= 1.0) {
            return Err(Error::BadShape {
                message: format!(
                    "stationary mean must be in [0, 1], got {}",
                    self.stationary_mean
                ),
            });
        }
        if self.mixing_time_eighth == 0 {
            return Err(Error::BadShape {
                message: "mixing time must be ≥ 1".into(),
            });
        }
        if !(self.phi_pi_norm >= 1.0) {
            return Err(Error::BadShape {
                message: format!("‖φ‖_π is always ≥ 1, got {}", self.phi_pi_norm),
            });
        }
        Ok(())
    }

    /// Lower-tail bound `P[X ≤ (1−δ)µT]` per Theorem 3.1 — the paper's
    /// Inequality (47) with `X = C(t₀, t₀+T−1)`.
    ///
    /// # Errors
    ///
    /// Propagates [`WalkBoundParams::validate`]; also rejects `δ ∉ (0, 1)`.
    pub fn lower_tail(&self, delta: f64) -> Result<f64> {
        self.validate()?;
        if !(delta > 0.0 && delta < 1.0) {
            return Err(Error::BadShape {
                message: format!("lower-tail δ must be in (0, 1), got {delta}"),
            });
        }
        Ok(self.ln_lower_tail(delta)?.exp().min(1.0))
    }

    /// Natural log of the lower-tail bound; stays meaningful when the
    /// bound underflows (deep concentration regimes).
    ///
    /// # Errors
    ///
    /// Same contract as [`WalkBoundParams::lower_tail`].
    pub fn ln_lower_tail(&self, delta: f64) -> Result<f64> {
        self.validate()?;
        if !(delta > 0.0 && delta < 1.0) {
            return Err(Error::BadShape {
                message: format!("lower-tail δ must be in (0, 1), got {delta}"),
            });
        }
        let exponent = -delta * delta * self.stationary_mean * self.steps as f64
            / (72.0 * self.mixing_time_eighth as f64);
        Ok(CHUNG_ET_AL_CONSTANT.ln() + self.phi_pi_norm.ln() + exponent)
    }

    /// Upper-tail bound `P[X ≥ (1+δ)µT]` per Theorem 3.1.
    ///
    /// # Errors
    ///
    /// Propagates [`WalkBoundParams::validate`]; also rejects `δ ≤ 0`.
    pub fn upper_tail(&self, delta: f64) -> Result<f64> {
        self.validate()?;
        if !(delta > 0.0) {
            return Err(Error::BadShape {
                message: format!("upper-tail δ must be > 0, got {delta}"),
            });
        }
        // Theorem 3.1's upper tail: exp(−δ²µT/(72τ)) for δ ≤ 1, and
        // exp(−δµT/(72τ)) for δ > 1.
        let effective = delta * delta.min(1.0);
        let exponent = -effective * self.stationary_mean * self.steps as f64
            / (72.0 * self.mixing_time_eighth as f64);
        Ok((CHUNG_ET_AL_CONSTANT * self.phi_pi_norm * exponent.exp()).min(1.0))
    }

    /// Smallest `T` making the lower-tail bound at most `target`;
    /// solves the bound equation in closed form.
    ///
    /// # Errors
    ///
    /// Same contract as [`WalkBoundParams::lower_tail`] (the `steps`
    /// field is ignored); additionally rejects `stationary_mean == 0`.
    pub fn steps_for_lower_tail(&self, delta: f64, target: f64) -> Result<u64> {
        if self.stationary_mean == 0.0 {
            return Err(Error::BadShape {
                message: "stationary mean must be positive to pick T".into(),
            });
        }
        if !(target > 0.0 && target < 1.0) {
            return Err(Error::BadShape {
                message: format!("target must be in (0, 1), got {target}"),
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(Error::BadShape {
                message: format!("δ must be in (0, 1), got {delta}"),
            });
        }
        let numerator = (CHUNG_ET_AL_CONSTANT * self.phi_pi_norm / target).ln();
        let denominator =
            delta * delta * self.stationary_mean / (72.0 * self.mixing_time_eighth as f64);
        Ok((numerator / denominator).ceil().max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WalkBoundParams {
        WalkBoundParams {
            steps: 100_000,
            stationary_mean: 0.01,
            mixing_time_eighth: 5,
            phi_pi_norm: 2.0,
        }
    }

    #[test]
    fn pi_norm_point_mass() {
        let pi = [0.2, 0.8];
        let phi = [1.0, 0.0];
        assert!((pi_norm(&phi, &pi) - (1.0f64 / 0.2).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn pi_norm_stationary_start_is_one() {
        let pi = [0.1, 0.2, 0.3, 0.4];
        assert!((pi_norm(&pi, &pi) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_dominates_all_point_masses() {
        let pi = [0.05, 0.15, 0.8];
        let worst = pi_norm_worst_case(0.05);
        for s in 0..3 {
            let mut phi = [0.0; 3];
            phi[s] = 1.0;
            assert!(pi_norm(&phi, &pi) <= worst + 1e-12);
        }
    }

    #[test]
    fn ln_worst_case_matches_linear() {
        let min_pi = 1e-8;
        let a = pi_norm_worst_case(min_pi).ln();
        let b = ln_pi_norm_worst_case(min_pi.ln());
        assert!((a - b).abs() < 1e-9);
        // And it keeps working far below f64 range.
        let huge = ln_pi_norm_worst_case(-1e8);
        assert_eq!(huge, 5e7);
    }

    #[test]
    fn lower_tail_decays_exponentially_in_t() {
        let p = params();
        let mut prev_ln = 0.0;
        for (i, steps) in [100_000u64, 200_000, 400_000].iter().enumerate() {
            let q = WalkBoundParams { steps: *steps, ..p };
            let ln_b = q.ln_lower_tail(0.5).unwrap();
            if i > 0 {
                // Doubling T roughly doubles |log bound| (up to the ‖φ‖ term).
                assert!(ln_b < prev_ln, "bound must shrink with T");
            }
            prev_ln = ln_b;
        }
    }

    #[test]
    fn lower_tail_bounded_by_one() {
        let p = WalkBoundParams {
            steps: 1,
            stationary_mean: 1e-12,
            mixing_time_eighth: 1000,
            phi_pi_norm: 50.0,
        };
        assert_eq!(p.lower_tail(0.5).unwrap(), 1.0);
    }

    #[test]
    fn tail_bounds_reject_bad_delta() {
        let p = params();
        assert!(p.lower_tail(0.0).is_err());
        assert!(p.lower_tail(1.0).is_err());
        assert!(p.upper_tail(-0.1).is_err());
    }

    #[test]
    fn validate_rejects_degenerate() {
        let mut p = params();
        p.steps = 0;
        assert!(p.validate().is_err());
        let mut p = params();
        p.mixing_time_eighth = 0;
        assert!(p.validate().is_err());
        let mut p = params();
        p.phi_pi_norm = 0.5;
        assert!(p.validate().is_err());
        let mut p = params();
        p.stationary_mean = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn steps_for_target_achieves_target() {
        let p = params();
        let t = p.steps_for_lower_tail(0.5, 1e-6).unwrap();
        let q = WalkBoundParams { steps: t, ..p };
        assert!(q.lower_tail(0.5).unwrap() <= 1e-6);
        // And one step fewer misses it (tightness of the ceil).
        if t > 1 {
            let q = WalkBoundParams { steps: t - 1, ..p };
            assert!(q.lower_tail(0.5).unwrap() > 1e-6 * 0.9);
        }
    }

    #[test]
    fn upper_tail_monotone_in_delta() {
        let p = params();
        let b1 = p.upper_tail(0.2).unwrap();
        let b2 = p.upper_tail(0.5).unwrap();
        let b3 = p.upper_tail(2.0).unwrap();
        assert!(b1 >= b2 && b2 >= b3);
    }
}
