//! Exact private-chain race analysis on a capped absorbing chain.
//!
//! The paper reduces a `T`-consistency violation to the adversary's
//! private chain catching up a deficit of `T` blocks while each new
//! block extends the adversary's chain with probability `q` and the
//! honest chain with probability `1 − q`. On the integer lattice of
//! the adversary's *deficit* this is a birth–death chain: from deficit
//! `d` the race moves to `d − 1` with probability `q` and to `d + 1`
//! with probability `1 − q`. Deficit `0` — the adversary has caught up
//! and can rewrite depth `T` — is absorbing, and this module caps the
//! state space at a second absorbing deficit `cap`, turning the
//! infinite race into a finite chain that [`absorption::analyze`]
//! solves exactly.
//!
//! Capping truncates probability mass: a race that reaches `cap` is
//! declared safe, while on the infinite chain it could still catch up
//! later. The omitted mass is provably small — from deficit `cap` the
//! infinite-chain catch-up probability is at most
//! `min(1, (q/(1−q))^cap)` (the gambler's-ruin tail; see
//! [`escape_tail_bound`]) — so every exact answer here carries a
//! rigorous [`ExactRace::truncation_error`] rather than a heuristic
//! "cap was probably large enough".
//!
//! [`absorption::analyze`]: crate::absorption::analyze

use crate::absorption;
use crate::chain::{MarkovChain, MarkovChainBuilder};
use crate::{Error, Result};

/// Largest admissible state cap: the absorbing solve is `O(cap³)`, and
/// this ceiling keeps a single race analysis well under a millisecond.
pub const MAX_CAP: u64 = 1024;

/// One exact race analysis: the truncated violation probability plus a
/// provable bound on what the truncation can hide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactRace {
    /// The consistency depth `T` the race starts behind.
    pub threshold: u64,
    /// The deficit at which the capped chain declares the race safe.
    pub cap: u64,
    /// Exact probability, on the capped chain, that the race is
    /// absorbed at deficit 0 (a `T`-consistency violation).
    pub probability: f64,
    /// Rigorous upper bound on `p_infinite − probability`: the capped
    /// chain only *under*-counts violations, and by at most this much.
    pub truncation_error: f64,
    /// Expected number of race steps until either absorption.
    pub expected_steps: f64,
}

impl ExactRace {
    /// The interval `[probability, probability + truncation_error]`
    /// guaranteed to contain the un-truncated violation probability
    /// (upper end clamped to 1).
    #[must_use]
    pub fn bracket(&self) -> (f64, f64) {
        (
            self.probability,
            (self.probability + self.truncation_error).min(1.0),
        )
    }
}

/// Upper bound on the infinite-chain catch-up probability from a
/// deficit of `d` blocks: `min(1, (q/(1−q))^d)`.
///
/// For `q < ½` this is the exact gambler's-ruin limit `ρ^d` with
/// `ρ = q/(1−q) < 1`; for `q ≥ ½` the adversary eventually catches up
/// with probability one and the bound degrades to the trivial `1`, so
/// the bound is valid for every `q ∈ (0, 1)`. Computed in log space so
/// deep deficits underflow gracefully to `0` instead of losing
/// precision.
#[must_use]
pub fn escape_tail_bound(q: f64, d: u64) -> f64 {
    if q >= 0.5 {
        return 1.0;
    }
    // ρ^d = exp(d·(ln q − ln(1−q))); ln_1p keeps 1−q accurate near 0.
    let ln_rho = q.ln() - (-q).ln_1p();
    let d = d as f64;
    (d * ln_rho).exp().min(1.0)
}

/// Builds the capped race chain: states `{0, …, cap}` are the
/// adversary's deficit, `0` and `cap` are absorbing, and every interior
/// deficit `d` steps to `d − 1` with probability `q` and `d + 1` with
/// probability `1 − q`.
///
/// # Errors
///
/// [`Error::BadShape`] when `q` is outside `(0, 1)` or non-finite, or
/// `cap` is below 2 or above [`MAX_CAP`].
pub fn race_chain(q: f64, cap: u64) -> Result<MarkovChain> {
    if !q.is_finite() || q <= 0.0 || q >= 1.0 {
        return Err(Error::BadShape {
            message: format!("race share q = {q} must lie strictly inside (0, 1)"),
        });
    }
    if !(2..=MAX_CAP).contains(&cap) {
        return Err(Error::BadShape {
            message: format!("race cap {cap} must lie in [2, {MAX_CAP}]"),
        });
    }
    let h = usize::try_from(cap).expect("cap ≤ MAX_CAP fits usize");
    let mut b = MarkovChainBuilder::new(h + 1);
    b.add(0, 0, 1.0)?;
    b.add(h, h, 1.0)?;
    for d in 1..h {
        b.add(d, d - 1, q)?;
        b.add(d, d + 1, 1.0 - q)?;
    }
    b.build()
}

/// Solves the capped race exactly: the probability that, starting `T`
/// blocks behind, the adversary's deficit hits `0` before `cap`,
/// together with the provable truncation error and the expected race
/// length.
///
/// The truncation error is `P[hit cap first] · escape_tail_bound(q,
/// cap)`: decomposing the infinite race at the first exit of
/// `(0, cap)` gives `p_∞ = p_capped + P[hit cap first] · p_∞(cap)`,
/// and [`escape_tail_bound`] dominates `p_∞(cap)`.
///
/// # Errors
///
/// [`Error::BadShape`] when `q ∉ (0, 1)`, `threshold` is 0, or
/// `cap ≤ threshold` / `cap > MAX_CAP` (propagated from
/// [`race_chain`]).
///
/// ```
/// use markov::race::violation_probability;
///
/// // 30% effective adversary, depth 6, cap far beyond the threshold:
/// // the capped answer matches the closed form (3/7)^6 tightly.
/// let race = violation_probability(0.3, 6, 70)?;
/// let closed = (0.3f64 / 0.7).powi(6);
/// assert!((race.probability - closed).abs() <= race.truncation_error + 1e-15);
/// assert!(race.truncation_error < 1e-20);
/// # Ok::<(), markov::Error>(())
/// ```
pub fn violation_probability(q: f64, threshold: u64, cap: u64) -> Result<ExactRace> {
    if threshold == 0 {
        return Err(Error::BadShape {
            message: "race threshold must be at least 1".into(),
        });
    }
    if cap <= threshold {
        return Err(Error::BadShape {
            message: format!("race cap {cap} must exceed the threshold {threshold}"),
        });
    }
    let chain = race_chain(q, cap)?;
    let analysis = absorption::analyze(&chain)?;
    let start = usize::try_from(threshold).expect("threshold < cap ≤ MAX_CAP fits usize");
    let end = usize::try_from(cap).expect("cap ≤ MAX_CAP fits usize");
    let escaped = analysis.probability(start, end);
    Ok(ExactRace {
        threshold,
        cap,
        probability: analysis.probability(start, 0),
        truncation_error: escaped * escape_tail_bound(q, cap),
        expected_steps: analysis.steps_from(start),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gambler's-ruin closed form on the capped chain:
    /// `(r^{h−z} − 1)/(r^h − 1)` with `r = (1−q)/q`.
    fn ruin_closed_form(q: f64, z: u64, h: u64) -> f64 {
        let r = (1.0 - q) / q;
        (r.powi((h - z) as i32) - 1.0) / (r.powi(h as i32) - 1.0)
    }

    #[test]
    fn matches_gamblers_ruin_closed_form() {
        for &(q, z, h) in &[(0.2, 3, 12), (0.35, 5, 20), (0.45, 2, 9)] {
            let race = violation_probability(q, z, h).unwrap();
            let exact = ruin_closed_form(q, z, h);
            assert!(
                (race.probability - exact).abs() < 1e-12,
                "q={q} z={z} h={h}: {} vs {exact}",
                race.probability
            );
        }
    }

    #[test]
    fn converges_to_the_infinite_closed_form_within_the_bound() {
        let q = 0.3_f64;
        let z = 4;
        let p_inf = (q / (1.0 - q)).powi(z as i32);
        for cap in [6, 10, 20, 60] {
            let race = violation_probability(q, z, cap).unwrap();
            assert!(
                race.probability <= p_inf + 1e-15,
                "truncation only under-counts"
            );
            assert!(
                p_inf - race.probability <= race.truncation_error + 1e-15,
                "cap {cap}: gap {} exceeds the reported bound {}",
                p_inf - race.probability,
                race.truncation_error
            );
        }
    }

    #[test]
    fn truncation_error_vanishes_with_the_cap() {
        let loose = violation_probability(0.25, 5, 10).unwrap();
        let tight = violation_probability(0.25, 5, 80).unwrap();
        assert!(tight.truncation_error < loose.truncation_error);
        assert!(tight.truncation_error < 1e-30);
    }

    #[test]
    fn supercritical_share_reports_the_trivial_tail() {
        // q ≥ ½: the adversary wins the infinite race almost surely, so
        // the bound cannot do better than the full escaped mass.
        let race = violation_probability(0.6, 3, 12).unwrap();
        assert_eq!(escape_tail_bound(0.6, 12), 1.0);
        let escaped = 1.0 - race.probability; // birth–death: all mass absorbs
        assert!((race.truncation_error - escaped).abs() < 1e-12);
        let (lo, hi) = race.bracket();
        assert!(
            lo <= 1.0 && (hi - 1.0).abs() < 1e-12,
            "p_∞ = 1 is bracketed"
        );
    }

    #[test]
    fn expected_steps_are_positive_and_grow_with_the_cap() {
        let short = violation_probability(0.4, 3, 8).unwrap();
        let long = violation_probability(0.4, 3, 40).unwrap();
        assert!(short.expected_steps > 0.0);
        assert!(long.expected_steps > short.expected_steps);
    }

    #[test]
    fn tail_bound_is_monotone_and_log_space_safe() {
        assert!(escape_tail_bound(0.2, 5) > escape_tail_bound(0.2, 10));
        assert_eq!(escape_tail_bound(0.5, 7), 1.0);
        // Deep deficits underflow to exactly zero instead of NaN.
        let deep = escape_tail_bound(0.01, 1000);
        assert!((0.0..1e-300).contains(&deep));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(matches!(
            violation_probability(0.0, 3, 10),
            Err(Error::BadShape { .. })
        ));
        assert!(matches!(
            violation_probability(1.0, 3, 10),
            Err(Error::BadShape { .. })
        ));
        assert!(matches!(
            violation_probability(f64::NAN, 3, 10),
            Err(Error::BadShape { .. })
        ));
        assert!(matches!(
            violation_probability(0.3, 0, 10),
            Err(Error::BadShape { .. })
        ));
        assert!(matches!(
            violation_probability(0.3, 10, 10),
            Err(Error::BadShape { .. })
        ));
        assert!(matches!(
            violation_probability(0.3, 3, MAX_CAP + 1),
            Err(Error::BadShape { .. })
        ));
    }

    #[test]
    fn chain_is_the_expected_birth_death_structure() {
        let chain = race_chain(0.3, 5).unwrap();
        assert_eq!(chain.n_states(), 6);
        assert_eq!(chain.prob(0, 0), 1.0);
        assert_eq!(chain.prob(5, 5), 1.0);
        assert!((chain.prob(2, 1) - 0.3).abs() < 1e-15);
        assert!((chain.prob(2, 3) - 0.7).abs() < 1e-15);
        assert_eq!(chain.prob(2, 2), 0.0);
    }
}
