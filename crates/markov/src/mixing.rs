//! Total-variation distance and mixing times.
//!
//! The paper's Inequality (47) contains the ε-mixing time `τ(ε, ᾱ, Δ)`
//! of the chain `C_{F‖P}` with ε fixed at 1/8. These routines compute
//! exact worst-case TV mixing times by evolving point-mass distributions.

use crate::chain::MarkovChain;
use crate::{Error, Result};

/// Total-variation distance `½·Σ|p_i − q_i|` between two distributions.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// use markov::mixing::tv_distance;
/// assert_eq!(tv_distance(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
/// assert_eq!(tv_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
/// ```
#[must_use]
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Worst-case TV distance to stationarity after `t` steps:
/// `d(t) = max_start ‖δ_start·Pᵗ − π‖_TV`.
pub fn distance_at(chain: &MarkovChain, pi: &[f64], t: usize) -> f64 {
    (0..chain.n_states())
        .map(|s| {
            let d = chain.step_n(&chain.point_distribution(s), t);
            tv_distance(&d, pi)
        })
        .fold(0.0, f64::max)
}

/// The ε-mixing time: smallest `t` with `d(t) ≤ ε`, searched by doubling
/// then bisection, evolving all point masses simultaneously.
///
/// # Errors
///
/// * [`Error::NotErgodic`] if the chain is not ergodic (mixing time is
///   undefined).
/// * [`Error::NoConvergence`] if `d(t) > ε` even at `max_steps`.
///
/// ```
/// use markov::chain::MarkovChain;
/// use markov::stationary::stationary_gth;
/// use markov::mixing::mixing_time;
///
/// let c = MarkovChain::from_rows(vec![vec![0.5, 0.5], vec![0.5, 0.5]])?;
/// let pi = stationary_gth(&c)?;
/// // This chain mixes in one step.
/// assert_eq!(mixing_time(&c, &pi, 0.125, 1024)?, 1);
/// # Ok::<(), markov::Error>(())
/// ```
pub fn mixing_time(
    chain: &MarkovChain,
    pi: &[f64],
    epsilon: f64,
    max_steps: usize,
) -> Result<usize> {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    if !crate::structure::is_ergodic(chain) {
        return Err(Error::NotErgodic {
            reason: "mixing time requires an ergodic chain".into(),
        });
    }
    let n = chain.n_states();
    // Evolve all point masses in lockstep; d(t) is monotone non-increasing
    // (standard coupling argument), so doubling + bisection is valid.
    let mut dists: Vec<Vec<f64>> = (0..n).map(|s| chain.point_distribution(s)).collect();
    let mut t = 0usize;
    let worst =
        |ds: &[Vec<f64>]| -> f64 { ds.iter().map(|d| tv_distance(d, pi)).fold(0.0, f64::max) };
    if worst(&dists) <= epsilon {
        return Ok(0);
    }
    // Advance step-by-step with a doubling schedule of checkpoints.
    let mut check = 1usize;
    loop {
        while t < check {
            for d in &mut dists {
                *d = chain.step(d);
            }
            t += 1;
        }
        if worst(&dists) <= epsilon {
            break;
        }
        if t >= max_steps {
            return Err(Error::NoConvergence {
                procedure: "mixing_time",
                iterations: max_steps,
                residual: worst(&dists),
            });
        }
        check = (check * 2).min(max_steps);
    }
    // We know d(check/2) > ε ≥ d(check) (or check == 1). Bisect by
    // re-evolving from scratch — O(log) extra sweeps, exact answer.
    let mut lo = check / 2; // d(lo) > ε
    let mut hi = t; // d(hi) ≤ ε
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if distance_at(chain, pi, mid) <= epsilon {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// A spectral-gap-style upper bound on the 1/8-mixing time from the
/// contraction coefficient observed over one step (Dobrushin):
/// `τ(ε) ≤ ⌈ln(1/(2ε)) / ln(1/κ)⌉` where `κ = max_{i,j} TV(P_i·, P_j·)`.
///
/// Returns `None` when the one-step Dobrushin coefficient is 1 (no
/// contraction visible in one step; the chain may still mix).
#[must_use]
pub fn dobrushin_mixing_bound(chain: &MarkovChain, epsilon: f64) -> Option<usize> {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    let n = chain.n_states();
    let dense = chain.to_dense();
    let mut kappa = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            kappa = kappa.max(tv_distance(&dense[i], &dense[j]));
        }
    }
    if kappa >= 1.0 {
        return None;
    }
    if kappa == 0.0 {
        return Some(1);
    }
    let steps = ((1.0 / (2.0 * epsilon)).ln() / (1.0 / kappa).ln()).ceil();
    Some(steps.max(0.0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::MarkovChain;
    use crate::stationary::stationary_gth;

    #[test]
    fn tv_distance_properties() {
        let p = [0.2, 0.3, 0.5];
        let q = [0.5, 0.3, 0.2];
        assert_eq!(tv_distance(&p, &p), 0.0);
        assert!((tv_distance(&p, &q) - 0.3).abs() < 1e-15);
        assert_eq!(tv_distance(&p, &q), tv_distance(&q, &p));
    }

    #[test]
    fn one_step_mixer() {
        // Rows identical ⇒ mixes in exactly one step.
        let c = MarkovChain::from_rows(vec![vec![0.3, 0.7], vec![0.3, 0.7]]).unwrap();
        let pi = stationary_gth(&c).unwrap();
        assert_eq!(mixing_time(&c, &pi, 0.125, 100).unwrap(), 1);
    }

    #[test]
    fn lazy_ring_mixing_monotone() {
        // Lazy ring on 6 states: slow but ergodic.
        let n = 6;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 0.5));
            t.push((i, (i + 1) % n, 0.25));
            t.push((i, (i + n - 1) % n, 0.25));
        }
        let c = MarkovChain::from_transitions(n, &t).unwrap();
        let pi = stationary_gth(&c).unwrap();
        let tau_eighth = mixing_time(&c, &pi, 0.125, 10_000).unwrap();
        let tau_quarter = mixing_time(&c, &pi, 0.25, 10_000).unwrap();
        assert!(tau_quarter <= tau_eighth);
        assert!(tau_eighth >= 2, "a lazy ring cannot mix in one step");
        // d(t) really is below ε at τ and above just before.
        assert!(distance_at(&c, &pi, tau_eighth) <= 0.125);
        assert!(distance_at(&c, &pi, tau_eighth - 1) > 0.125);
    }

    #[test]
    fn periodic_chain_rejected() {
        let ring = MarkovChain::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let pi = vec![0.5, 0.5];
        assert!(matches!(
            mixing_time(&ring, &pi, 0.125, 100),
            Err(crate::Error::NotErgodic { .. })
        ));
    }

    #[test]
    fn max_steps_exceeded() {
        // Nearly-reducible chain: mixing time astronomically large.
        let eps = 1e-12;
        let c = MarkovChain::from_rows(vec![vec![1.0 - eps, eps], vec![eps, 1.0 - eps]]).unwrap();
        let pi = vec![0.5, 0.5];
        assert!(matches!(
            mixing_time(&c, &pi, 0.125, 50),
            Err(crate::Error::NoConvergence { .. })
        ));
    }

    #[test]
    fn dobrushin_bound_dominates_true_mixing_time() {
        let c = MarkovChain::from_rows(vec![vec![0.6, 0.4], vec![0.3, 0.7]]).unwrap();
        let pi = stationary_gth(&c).unwrap();
        let tau = mixing_time(&c, &pi, 0.125, 10_000).unwrap();
        let bound = dobrushin_mixing_bound(&c, 0.125).unwrap();
        assert!(bound >= tau, "bound {bound} < true mixing time {tau}");
    }

    #[test]
    fn dobrushin_none_when_disjoint_supports() {
        let c = MarkovChain::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.5, 0.0, 0.5],
            vec![0.0, 1.0, 0.0],
        ])
        .unwrap();
        assert_eq!(dobrushin_mixing_bound(&c, 0.125), None);
    }
}
