//! Random-walk sampling over a [`MarkovChain`].
//!
//! Used to validate the paper's Eq. (26): the empirical occupancy of the
//! convergence-opportunity state over a `T`-step walk converges to
//! `T·π(state)`.

use crate::chain::MarkovChain;
use probability::rng::RandomSource;

/// A position on a chain plus the RNG that drives it.
#[derive(Debug, Clone)]
pub struct RandomWalk<'a, R> {
    chain: &'a MarkovChain,
    state: usize,
    rng: R,
    steps_taken: u64,
}

impl<'a, R: RandomSource> RandomWalk<'a, R> {
    /// Starts a walk at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start ≥ chain.n_states()`.
    pub fn new(chain: &'a MarkovChain, start: usize, rng: R) -> Self {
        assert!(start < chain.n_states(), "start state out of range");
        RandomWalk {
            chain,
            state: start,
            rng,
            steps_taken: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> usize {
        self.state
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Takes one step; returns the new state.
    pub fn step(&mut self) -> usize {
        let u = self.rng.next_f64();
        let mut acc = 0.0;
        let mut chosen = None;
        for (j, p) in self.chain.successors(self.state) {
            acc += p;
            if u < acc {
                chosen = Some(j);
                break;
            }
        }
        // Rounding slack: fall back to the last successor.
        self.state = chosen.unwrap_or_else(|| {
            self.chain
                .successors(self.state)
                .last()
                .map(|(j, _)| j)
                .expect("every state of a stochastic chain has a successor")
        });
        self.steps_taken += 1;
        self.state
    }

    /// Takes `t` steps, returning the visited states (excluding the
    /// starting state).
    pub fn take_path(&mut self, t: usize) -> Vec<usize> {
        (0..t).map(|_| self.step()).collect()
    }

    /// Counts visits per state over the next `t` steps (the occupancy
    /// vector); includes the state after each step, not the start.
    pub fn occupancy(&mut self, t: usize) -> Vec<u64> {
        let mut counts = vec![0u64; self.chain.n_states()];
        for _ in 0..t {
            counts[self.step()] += 1;
        }
        counts
    }

    /// Sums an indicator over the next `t` steps: the number of steps
    /// landing in `targets`. This is exactly the paper's
    /// `X = Σ f_t(V_t)` occupancy statistic.
    pub fn count_visits(&mut self, targets: &[usize], t: usize) -> u64 {
        let mut is_target = vec![false; self.chain.n_states()];
        for &s in targets {
            is_target[s] = true;
        }
        let mut count = 0;
        for _ in 0..t {
            if is_target[self.step()] {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::MarkovChain;
    use crate::stationary::stationary_gth;
    use probability::rng::Xoshiro256PlusPlus;

    fn chain3() -> MarkovChain {
        MarkovChain::from_rows(vec![
            vec![0.2, 0.5, 0.3],
            vec![0.4, 0.1, 0.5],
            vec![0.25, 0.25, 0.5],
        ])
        .unwrap()
    }

    #[test]
    fn deterministic_walk_follows_cycle() {
        let ring = MarkovChain::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ])
        .unwrap();
        let rng = Xoshiro256PlusPlus::seed_from_u64(0);
        let mut walk = RandomWalk::new(&ring, 0, rng);
        assert_eq!(walk.take_path(6), vec![1, 2, 0, 1, 2, 0]);
        assert_eq!(walk.steps_taken(), 6);
    }

    #[test]
    fn occupancy_matches_stationary_distribution() {
        let c = chain3();
        let pi = stationary_gth(&c).unwrap();
        let rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut walk = RandomWalk::new(&c, 0, rng);
        let t = 300_000;
        let occ = walk.occupancy(t);
        for s in 0..3 {
            let freq = occ[s] as f64 / t as f64;
            assert!(
                (freq - pi[s]).abs() < 0.01,
                "state {s}: freq {freq} vs π {}",
                pi[s]
            );
        }
        assert_eq!(occ.iter().sum::<u64>(), t as u64);
    }

    #[test]
    fn count_visits_consistent_with_occupancy() {
        let c = chain3();
        let mut w1 = RandomWalk::new(&c, 1, Xoshiro256PlusPlus::seed_from_u64(9));
        let mut w2 = RandomWalk::new(&c, 1, Xoshiro256PlusPlus::seed_from_u64(9));
        let occ = w1.occupancy(10_000);
        let visits = w2.count_visits(&[0, 2], 10_000);
        assert_eq!(visits, occ[0] + occ[2]);
    }

    #[test]
    fn reproducible_across_identical_seeds() {
        let c = chain3();
        let mut a = RandomWalk::new(&c, 0, Xoshiro256PlusPlus::seed_from_u64(123));
        let mut b = RandomWalk::new(&c, 0, Xoshiro256PlusPlus::seed_from_u64(123));
        assert_eq!(a.take_path(100), b.take_path(100));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_start() {
        let c = chain3();
        let rng = Xoshiro256PlusPlus::seed_from_u64(0);
        let _ = RandomWalk::new(&c, 9, rng);
    }
}
