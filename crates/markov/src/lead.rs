//! Finite-horizon lead-distribution truncation of the private-chain
//! race.
//!
//! Where [`race`] solves the capped race to absorption,
//! this module pushes the adversary's *lead distribution* — a point
//! mass at the starting deficit — through a fixed number of race steps
//! on the same capped chain and reads off how the probability mass has
//! split: already absorbed at deficit 0 (a consistency violation),
//! already absorbed at the cap (declared safe), or still in flight at
//! an interior deficit.
//!
//! The point of the exercise is the error accounting. Classifying the
//! infinite race's paths at the first exit of `(0, cap)` or at the
//! horizon, whichever comes first, gives
//!
//! ```text
//! p_∞ = violation + escaped·p_∞(cap) + Σ_d mass(d)·p_∞(d)
//! ```
//!
//! and each residual catch-up probability `p_∞(d)` is dominated by the
//! gambler's-ruin tail [`race::escape_tail_bound`]. The reported
//! [`LeadTruncation::truncation_error`] is that dominated remainder,
//! so `[violation, violation + truncation_error]` provably brackets
//! the un-truncated violation probability at *every* horizon — the
//! bound tightens as in-flight mass drains, recovering the absorbing
//! answer in the limit.
//!
//! [`race::escape_tail_bound`]: crate::race::escape_tail_bound

use crate::race::{self, escape_tail_bound};
use crate::{Error, Result};

/// Largest admissible horizon: one step of distribution evolution is
/// `O(cap)`, so this ceiling keeps a full analysis around a
/// millisecond even at [`race::MAX_CAP`].
pub const MAX_STEPS: u64 = 1 << 20;

/// The lead distribution after a fixed number of race steps, with a
/// provable bound on the violation mass the truncation may still hide.
#[derive(Debug, Clone, PartialEq)]
pub struct LeadTruncation {
    /// The consistency depth `T` the race starts behind.
    pub threshold: u64,
    /// The deficit at which the capped chain declares the race safe.
    pub cap: u64,
    /// Number of race steps the distribution was evolved.
    pub steps: u64,
    /// Mass absorbed at deficit 0 within the horizon: a certified
    /// lower bound on the violation probability.
    pub violation: f64,
    /// Mass absorbed at the cap within the horizon.
    pub escaped: f64,
    /// Mass still at interior deficits, indexed from deficit 1 to
    /// `cap − 1` (length `cap − 1`).
    pub in_flight: Vec<f64>,
    /// Rigorous upper bound on `p_∞ − violation`: the escaped and
    /// in-flight masses weighted by their gambler's-ruin tails.
    pub truncation_error: f64,
}

impl LeadTruncation {
    /// Total in-flight mass.
    #[must_use]
    pub fn in_flight_mass(&self) -> f64 {
        self.in_flight.iter().sum()
    }

    /// The interval `[violation, violation + truncation_error]`
    /// guaranteed to contain the un-truncated violation probability
    /// (upper end clamped to 1).
    #[must_use]
    pub fn bracket(&self) -> (f64, f64) {
        (
            self.violation,
            (self.violation + self.truncation_error).min(1.0),
        )
    }
}

/// Evolves a point mass at deficit `threshold` through `steps` race
/// steps on the capped chain and accounts for every unit of
/// probability: absorbed-violating, absorbed-safe, or in flight —
/// the latter two folded into a provable truncation-error bound.
///
/// # Errors
///
/// [`Error::BadShape`] when `q ∉ (0, 1)`, `threshold` is 0,
/// `cap ≤ threshold`, `cap > MAX_CAP`, or `steps > MAX_STEPS`
/// (chain-shape errors propagate from [`race::race_chain`]).
///
/// ```
/// use markov::lead::lead_distribution;
///
/// let lead = lead_distribution(0.3, 4, 40, 4_000)?;
/// // After 4000 steps essentially nothing is still in flight, so the
/// // bracket has collapsed onto the absorbing answer.
/// assert!(lead.in_flight_mass() < 1e-12);
/// let (lo, hi) = lead.bracket();
/// assert!(hi - lo < 1e-12);
/// # Ok::<(), markov::Error>(())
/// ```
pub fn lead_distribution(q: f64, threshold: u64, cap: u64, steps: u64) -> Result<LeadTruncation> {
    if threshold == 0 {
        return Err(Error::BadShape {
            message: "race threshold must be at least 1".into(),
        });
    }
    if cap <= threshold {
        return Err(Error::BadShape {
            message: format!("race cap {cap} must exceed the threshold {threshold}"),
        });
    }
    if steps > MAX_STEPS {
        return Err(Error::BadShape {
            message: format!("horizon {steps} exceeds the supported maximum {MAX_STEPS}"),
        });
    }
    let chain = race::race_chain(q, cap)?;
    let start = usize::try_from(threshold).expect("threshold < cap ≤ MAX_CAP fits usize");
    let end = usize::try_from(cap).expect("cap ≤ MAX_CAP fits usize");
    let n_steps = usize::try_from(steps).expect("steps ≤ MAX_STEPS fits usize");
    let dist = chain.step_n(&chain.point_distribution(start), n_steps);
    let in_flight: Vec<f64> = dist[1..end].to_vec();
    let tail: f64 = in_flight
        .iter()
        .enumerate()
        .map(|(i, &mass)| mass * escape_tail_bound(q, i as u64 + 1))
        .sum();
    Ok(LeadTruncation {
        threshold,
        cap,
        steps,
        violation: dist[0],
        escaped: dist[end],
        in_flight,
        truncation_error: dist[end] * escape_tail_bound(q, cap) + tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::race::violation_probability;

    #[test]
    fn mass_is_conserved() {
        let lead = lead_distribution(0.35, 3, 20, 57).unwrap();
        let total = lead.violation + lead.escaped + lead.in_flight_mass();
        assert!((total - 1.0).abs() < 1e-12, "total mass {total}");
        assert_eq!(lead.in_flight.len(), 19);
    }

    #[test]
    fn brackets_the_absorbing_answer_at_every_horizon() {
        let q = 0.3;
        let (z, cap) = (4, 30);
        let absorbing = violation_probability(q, z, cap).unwrap();
        for steps in [0, 1, 5, 25, 100, 1_000] {
            let lead = lead_distribution(q, z, cap, steps).unwrap();
            let (lo, hi) = lead.bracket();
            assert!(
                lo <= absorbing.probability + 1e-15,
                "steps {steps}: lower end {lo} overshoots"
            );
            // The absorbing answer itself under-counts p_∞ by at most
            // its own truncation error, so the lead bracket must reach
            // at least that far.
            assert!(
                hi + 1e-15 >= absorbing.probability,
                "steps {steps}: upper end {hi} falls short of {}",
                absorbing.probability
            );
        }
    }

    #[test]
    fn converges_to_the_absorbing_answer() {
        let q = 0.3;
        let (z, cap) = (4, 30);
        let absorbing = violation_probability(q, z, cap).unwrap();
        let lead = lead_distribution(q, z, cap, 10_000).unwrap();
        assert!(lead.in_flight_mass() < 1e-12);
        assert!((lead.violation - absorbing.probability).abs() < 1e-12);
    }

    #[test]
    fn violation_mass_is_monotone_in_the_horizon() {
        let mut last = -1.0;
        for steps in [0, 2, 8, 32, 128] {
            let lead = lead_distribution(0.4, 2, 16, steps).unwrap();
            assert!(lead.violation >= last, "absorbed mass only grows");
            last = lead.violation;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn zero_steps_is_the_pure_prior() {
        let lead = lead_distribution(0.25, 5, 12, 0).unwrap();
        assert_eq!(lead.violation, 0.0);
        assert_eq!(lead.escaped, 0.0);
        assert!((lead.in_flight[4] - 1.0).abs() < 1e-15, "point mass at 5");
        // With everything in flight at deficit 5, the bound is exactly
        // the tail from there.
        assert!((lead.truncation_error - escape_tail_bound(0.25, 5)).abs() < 1e-15);
    }

    #[test]
    fn bound_tightens_as_mass_drains() {
        let early = lead_distribution(0.3, 3, 24, 10).unwrap();
        let late = lead_distribution(0.3, 3, 24, 1_000).unwrap();
        assert!(late.truncation_error < early.truncation_error);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(matches!(
            lead_distribution(0.3, 0, 10, 5),
            Err(Error::BadShape { .. })
        ));
        assert!(matches!(
            lead_distribution(0.3, 10, 10, 5),
            Err(Error::BadShape { .. })
        ));
        assert!(matches!(
            lead_distribution(1.5, 3, 10, 5),
            Err(Error::BadShape { .. })
        ));
        assert!(matches!(
            lead_distribution(0.3, 3, 10, MAX_STEPS + 1),
            Err(Error::BadShape { .. })
        ));
    }
}
