//! Statistics for fixed-effort multilevel-splitting estimators.
//!
//! A splitting run decomposes a rare event `{X ≥ ℓ_m}` into a chain of
//! nested level crossings `{X ≥ ℓ_1} ⊃ … ⊃ {X ≥ ℓ_m}` and estimates
//! each conditional probability `p_k = P(X ≥ ℓ_k | X ≥ ℓ_{k−1})` with
//! its own binomial sample of `N_k` replicas. This module holds the
//! distribution-free part of that estimator: combining the per-level
//! `(hits, trials)` pairs into the product estimate and its relative
//! error. The simulation-specific part (what the level function is and
//! how replicas are cloned and re-randomised) lives in
//! `nakamoto_sim::splitting`.
//!
//! Under fixed-effort splitting the level samples are independent given
//! the entrance states, so the relative variance of the product
//! estimator is, to first order,
//!
//! ```text
//! Var[p̂] / p²  ≈  Σ_k (1 − p_k) / (N_k · p_k)
//! ```
//!
//! (see e.g. Garvels' thesis on splitting, or Rubino & Tuffin,
//! *Rare Event Simulation*, ch. 3). We report the square root of that
//! sum as the **relative error**; multiplying it by the estimate gives
//! a one-standard-error half-width.
//!
//! # Example
//!
//! ```
//! use probability::rare_event::{product_estimate, LevelOutcome};
//!
//! // Three levels, each crossed by ~1/10 of its replicas.
//! let levels = vec![
//!     LevelOutcome { hits: 100, trials: 1000 },
//!     LevelOutcome { hits: 95, trials: 1000 },
//!     LevelOutcome { hits: 110, trials: 1000 },
//! ];
//! let est = product_estimate(&levels);
//! assert!((est.probability - 1.045e-3).abs() < 1e-6);
//! let rel = est.relative_error.unwrap();
//! assert!(rel > 0.0 && rel < 0.2);
//! ```

/// One level of a splitting run: how many of the `trials` replicas
/// started at the previous level crossed this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelOutcome {
    /// Replicas that reached the level.
    pub hits: u64,
    /// Replicas launched toward the level (the fixed effort).
    pub trials: u64,
}

impl LevelOutcome {
    /// The level's conditional-probability estimate `hits / trials`.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` — an effortless level has no estimate.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        assert!(
            self.trials > 0,
            "a splitting level needs at least one replica"
        );
        self.hits as f64 / self.trials as f64
    }
}

/// The combined product estimate over a chain of splitting levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductEstimate {
    /// `Π_k hits_k / trials_k`.
    pub probability: f64,
    /// `sqrt(Σ_k (1 − p̂_k) / (N_k · p̂_k))`; `None` when some level was
    /// starved (zero hits), where the estimator degenerates to 0 with
    /// no finite variance estimate.
    pub relative_error: Option<f64>,
    /// Index of the first starved level, if any.
    pub starved_at: Option<usize>,
}

impl ProductEstimate {
    /// One-standard-error half-width `probability · relative_error`;
    /// `None` for a starved chain.
    #[must_use]
    pub fn standard_error(&self) -> Option<f64> {
        self.relative_error.map(|re| self.probability * re)
    }
}

/// Combines per-level outcomes into the splitting product estimate.
///
/// An empty chain estimates the certain event (probability 1, zero
/// relative error). A starved level (zero hits) makes the product 0 and
/// the relative error undefined; `starved_at` reports where the chain
/// died so callers can distinguish "estimated 0" from "measured tiny".
///
/// # Panics
///
/// Panics if any level has `trials == 0`.
#[must_use]
pub fn product_estimate(levels: &[LevelOutcome]) -> ProductEstimate {
    let mut probability = 1.0f64;
    let mut rel_var = 0.0f64;
    for (at, level) in levels.iter().enumerate() {
        let p = level.estimate();
        if level.hits == 0 {
            return ProductEstimate {
                probability: 0.0,
                relative_error: None,
                starved_at: Some(at),
            };
        }
        probability *= p;
        rel_var += (1.0 - p) / (level.trials as f64 * p);
    }
    ProductEstimate {
        probability,
        relative_error: Some(rel_var.sqrt()),
        starved_at: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chain_is_certain() {
        let est = product_estimate(&[]);
        assert_eq!(est.probability, 1.0);
        assert_eq!(est.relative_error, Some(0.0));
        assert_eq!(est.starved_at, None);
    }

    #[test]
    fn single_level_matches_binomial_proportion() {
        // One level degenerates to the plain Monte-Carlo estimator with
        // relative error sqrt((1-p)/(n p)).
        let est = product_estimate(&[LevelOutcome {
            hits: 25,
            trials: 1000,
        }]);
        assert!((est.probability - 0.025).abs() < 1e-15);
        let expected = (0.975f64 / (1000.0 * 0.025)).sqrt();
        assert!((est.relative_error.unwrap() - expected).abs() < 1e-12);
        assert_eq!(est.standard_error().unwrap(), est.probability * expected);
    }

    #[test]
    fn product_and_variance_accumulate() {
        let levels = [
            LevelOutcome {
                hits: 500,
                trials: 1000,
            },
            LevelOutcome {
                hits: 200,
                trials: 400,
            },
        ];
        let est = product_estimate(&levels);
        assert!((est.probability - 0.25).abs() < 1e-15);
        let expected = (0.5f64 / (1000.0 * 0.5) + 0.5 / (400.0 * 0.5)).sqrt();
        assert!((est.relative_error.unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn starved_level_reports_position() {
        let levels = [
            LevelOutcome {
                hits: 10,
                trials: 100,
            },
            LevelOutcome {
                hits: 0,
                trials: 100,
            },
            LevelOutcome {
                hits: 5,
                trials: 100,
            },
        ];
        let est = product_estimate(&levels);
        assert_eq!(est.probability, 0.0);
        assert_eq!(est.relative_error, None);
        assert_eq!(est.standard_error(), None);
        assert_eq!(est.starved_at, Some(1));
    }

    #[test]
    fn certain_levels_add_no_variance() {
        let levels = [
            LevelOutcome {
                hits: 100,
                trials: 100,
            },
            LevelOutcome {
                hits: 30,
                trials: 100,
            },
        ];
        let est = product_estimate(&levels);
        assert!((est.probability - 0.3).abs() < 1e-15);
        let expected = (0.7f64 / (100.0 * 0.3)).sqrt();
        assert!((est.relative_error.unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_effort_levels_are_rejected() {
        let _ = product_estimate(&[LevelOutcome { hits: 0, trials: 0 }]);
    }

    #[test]
    fn tiny_products_stay_finite() {
        // 40 levels at p = 1/32 each: probability 2^-200 ≈ 6e-61 must
        // not underflow to zero.
        let levels = vec![
            LevelOutcome {
                hits: 4,
                trials: 128,
            };
            40
        ];
        let est = product_estimate(&levels);
        assert!(est.probability > 0.0);
        assert!(est.relative_error.unwrap().is_finite());
    }
}
