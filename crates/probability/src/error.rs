use std::fmt;

/// Error type for invalid distribution parameters or failed numerical
/// procedures.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A distribution or function parameter was outside its domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// An iterative numerical procedure failed to converge.
    NoConvergence {
        /// Name of the procedure (e.g. `"brent"`, `"incomplete_beta"`).
        procedure: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A root-bracketing precondition failed (no sign change on interval).
    NoBracket {
        /// Left endpoint of the attempted bracket.
        lo: f64,
        /// Right endpoint of the attempted bracket.
        hi: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Error::NoConvergence {
                procedure,
                iterations,
            } => write!(
                f,
                "`{procedure}` did not converge after {iterations} iterations"
            ),
            Error::NoBracket { lo, hi } => {
                write!(f, "no sign change on bracket [{lo}, {hi}]")
            }
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Shorthand constructor for [`Error::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let e = Error::invalid("p", "must lie in (0, 1)");
        assert_eq!(e.to_string(), "invalid parameter `p`: must lie in (0, 1)");
    }

    #[test]
    fn display_no_convergence() {
        let e = Error::NoConvergence {
            procedure: "brent",
            iterations: 100,
        };
        assert_eq!(
            e.to_string(),
            "`brent` did not converge after 100 iterations"
        );
    }

    #[test]
    fn display_no_bracket() {
        let e = Error::NoBracket { lo: 0.0, hi: 1.0 };
        assert_eq!(e.to_string(), "no sign change on bracket [0, 1]");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
