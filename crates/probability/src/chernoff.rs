//! Tail bounds: relative entropy, the Arratia–Gordon binomial bound used
//! in the paper's Inequality (49), multiplicative Chernoff bounds, and
//! Hoeffding's inequality.
//!
//! The paper bounds the adversary's block count `A(t₀, t₀+T−1) ~
//! binom(Tνn, p)` above its mean via (Eq. 48–49):
//!
//! ```text
//! P[A ≥ (1+δ₃)·E[A]] ≤ exp(−Tνn · D((1+δ₃)p ‖ p))
//! ```

use crate::{Error, Result};

/// Bernoulli relative entropy (KL divergence)
/// `D(a‖p) = a·ln(a/p) + (1−a)·ln((1−a)/(1−p))` in nats.
///
/// Conventions: terms with `a ∈ {0, 1}` use `0·ln 0 = 0`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] unless `a ∈ [0, 1]` and `p ∈ (0, 1)`.
///
/// ```
/// use probability::chernoff::relative_entropy;
/// assert_eq!(relative_entropy(0.5, 0.5)?, 0.0);
/// assert!(relative_entropy(0.9, 0.5)? > 0.0);
/// # Ok::<(), probability::Error>(())
/// ```
pub fn relative_entropy(a: f64, p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&a) || a.is_nan() {
        return Err(Error::invalid("a", format!("must lie in [0, 1], got {a}")));
    }
    if !(p > 0.0 && p < 1.0) || p.is_nan() {
        return Err(Error::invalid("p", format!("must lie in (0, 1), got {p}")));
    }
    let term1 = if a == 0.0 { 0.0 } else { a * (a / p).ln() };
    let term2 = if a == 1.0 {
        0.0
    } else {
        (1.0 - a) * ((1.0 - a).ln() - (-p).ln_1p())
    };
    Ok((term1 + term2).max(0.0))
}

/// The paper's Eq. (48): relative entropy between `Bernoulli((1+δ)p)` and
/// `Bernoulli(p)`, written exactly as in the paper:
///
/// `D((1+δ)p‖p) = (1+δ)p·ln(1+δ) + (1−(1+δ)p)·ln((1−(1+δ)p)/(1−p))`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] unless `δ ≥ 0`, `p ∈ (0, 1)` and
/// `(1+δ)p ≤ 1`.
pub fn relative_entropy_scaled(delta: f64, p: f64) -> Result<f64> {
    if !(delta >= 0.0) || delta.is_nan() {
        return Err(Error::invalid("delta", format!("must be ≥ 0, got {delta}")));
    }
    let a = (1.0 + delta) * p;
    if a > 1.0 {
        return Err(Error::invalid(
            "delta",
            format!("(1+delta)p = {a} exceeds 1"),
        ));
    }
    relative_entropy(a, p)
}

/// Arratia–Gordon upper-tail bound for `X ~ binom(n, p)`:
/// `P[X ≥ a·n] ≤ exp(−n·D(a‖p))` for `a ≥ p`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] unless `p < a ≤ 1` (the bound is
/// only valid above the mean) and `p ∈ (0, 1)`.
pub fn binomial_upper_tail_bound(n: u64, p: f64, a: f64) -> Result<f64> {
    if !(a >= p) {
        return Err(Error::invalid(
            "a",
            format!("upper-tail bound requires a ≥ p, got a={a}, p={p}"),
        ));
    }
    let d = relative_entropy(a, p)?;
    Ok((-(n as f64) * d).exp())
}

/// Arratia–Gordon lower-tail bound: `P[X ≤ a·n] ≤ exp(−n·D(a‖p))` for
/// `a ≤ p`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] unless `0 ≤ a ≤ p` and `p ∈ (0, 1)`.
pub fn binomial_lower_tail_bound(n: u64, p: f64, a: f64) -> Result<f64> {
    if !(a <= p) {
        return Err(Error::invalid(
            "a",
            format!("lower-tail bound requires a ≤ p, got a={a}, p={p}"),
        ));
    }
    let d = relative_entropy(a, p)?;
    Ok((-(n as f64) * d).exp())
}

/// The paper's Inequality (49): for `A ~ binom(Tνn, p)` and constant
/// `δ₃ > 0`,
/// `P[A ≥ (1+δ₃)·E[A]] ≤ exp(−Tνn·D((1+δ₃)p‖p))`.
///
/// Returns the bound value.
///
/// # Errors
///
/// Propagates domain errors from [`relative_entropy_scaled`].
pub fn adversary_tail_bound(t_nu_n: u64, p: f64, delta3: f64) -> Result<f64> {
    let d = relative_entropy_scaled(delta3, p)?;
    Ok((-(t_nu_n as f64) * d).exp())
}

/// Multiplicative Chernoff upper bound:
/// `P[X ≥ (1+δ)µ] ≤ exp(−δ²µ/(2+δ))` for `δ > 0`, `µ = np`.
///
/// A weaker but simpler companion to the entropy bound; used for
/// cross-checks.
#[must_use]
pub fn chernoff_upper(mean: f64, delta: f64) -> f64 {
    assert!(delta >= 0.0 && mean >= 0.0);
    (-(delta * delta) * mean / (2.0 + delta)).exp()
}

/// Multiplicative Chernoff lower bound:
/// `P[X ≤ (1−δ)µ] ≤ exp(−δ²µ/2)` for `δ ∈ [0, 1]`.
#[must_use]
pub fn chernoff_lower(mean: f64, delta: f64) -> f64 {
    assert!((0.0..=1.0).contains(&delta) && mean >= 0.0);
    (-(delta * delta) * mean / 2.0).exp()
}

/// Hoeffding's inequality for `n` independent variables in `[0, 1]`:
/// `P[|X̄ − E X̄| ≥ t] ≤ 2·exp(−2nt²)`.
#[must_use]
pub fn hoeffding_two_sided(n: u64, t: f64) -> f64 {
    assert!(t >= 0.0);
    2.0 * (-2.0 * n as f64 * t * t).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::Binomial;

    #[test]
    fn relative_entropy_zero_iff_equal() {
        for &p in &[0.01, 0.3, 0.5, 0.9] {
            assert_eq!(relative_entropy(p, p).unwrap(), 0.0);
        }
        assert!(relative_entropy(0.4, 0.3).unwrap() > 0.0);
        assert!(relative_entropy(0.2, 0.3).unwrap() > 0.0);
    }

    #[test]
    fn relative_entropy_boundary_a() {
        // a = 0: D = ln(1/(1-p)).
        let p = 0.25f64;
        let d0 = relative_entropy(0.0, p).unwrap();
        assert!((d0 - (-(-p).ln_1p())).abs() < 1e-12);
        // a = 1: D = ln(1/p).
        let d1 = relative_entropy(1.0, p).unwrap();
        assert!((d1 - (1.0 / p).ln()).abs() < 1e-12);
    }

    #[test]
    fn relative_entropy_rejects_bad_domain() {
        assert!(relative_entropy(-0.1, 0.5).is_err());
        assert!(relative_entropy(0.5, 0.0).is_err());
        assert!(relative_entropy(0.5, 1.0).is_err());
    }

    #[test]
    fn scaled_entropy_matches_direct() {
        let p = 0.01;
        let delta = 0.5;
        let a = relative_entropy_scaled(delta, p).unwrap();
        let b = relative_entropy((1.0 + delta) * p, p).unwrap();
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn scaled_entropy_rejects_overflow_probability() {
        assert!(relative_entropy_scaled(200.0, 0.01).is_err());
    }

    #[test]
    fn upper_tail_bound_dominates_exact_tail() {
        // The bound must be ≥ the exact binomial tail.
        let n = 200u64;
        let p = 0.1;
        let d = Binomial::new(n, p).unwrap();
        for &a in &[0.15, 0.2, 0.3, 0.5] {
            let k = (a * n as f64).ceil() as u64;
            let exact = d.sf(k - 1).unwrap(); // P[X ≥ k]
            let bound = binomial_upper_tail_bound(n, p, a).unwrap();
            assert!(
                bound + 1e-12 >= exact,
                "a={a}: bound {bound} < exact {exact}"
            );
        }
    }

    #[test]
    fn lower_tail_bound_dominates_exact_tail() {
        let n = 200u64;
        let p = 0.5;
        let d = Binomial::new(n, p).unwrap();
        for &a in &[0.45, 0.4, 0.3, 0.1] {
            let k = (a * n as f64).floor() as u64;
            let exact = d.cdf(k).unwrap(); // P[X ≤ k]
            let bound = binomial_lower_tail_bound(n, p, a).unwrap();
            assert!(
                bound + 1e-12 >= exact,
                "a={a}: bound {bound} < exact {exact}"
            );
        }
    }

    #[test]
    fn adversary_bound_decays_exponentially_in_t() {
        // Paper Ineq. (49): doubling T squares the bound (in log scale).
        let p = 1e-6;
        let nu_n = 10_000u64;
        let delta3 = 0.5;
        let b1 = adversary_tail_bound(1_000 * nu_n, p, delta3).unwrap();
        let b2 = adversary_tail_bound(2_000 * nu_n, p, delta3).unwrap();
        assert!((b2.ln() - 2.0 * b1.ln()).abs() < 1e-9 * b1.ln().abs());
        assert!(b2 < b1);
    }

    #[test]
    fn chernoff_bounds_trivial_cases() {
        assert_eq!(chernoff_upper(10.0, 0.0), 1.0);
        assert_eq!(chernoff_lower(10.0, 0.0), 1.0);
        assert!(chernoff_upper(100.0, 1.0) < 1e-14);
        assert!(chernoff_lower(100.0, 1.0) < 1e-21);
    }

    #[test]
    fn entropy_bound_tighter_than_chernoff_upper() {
        // D((1+δ)p‖p)·n ≥ δ²np/(2+δ) for binomials (entropy bound is
        // uniformly at least as strong).
        let n = 10_000u64;
        let p = 0.01;
        for &delta in &[0.1, 0.5, 1.0, 3.0] {
            let entropy = adversary_tail_bound(n, p, delta).unwrap();
            let chernoff = chernoff_upper(n as f64 * p, delta);
            assert!(
                entropy <= chernoff * (1.0 + 1e-9),
                "delta={delta}: entropy {entropy} > chernoff {chernoff}"
            );
        }
    }

    #[test]
    fn hoeffding_known_value() {
        let b = hoeffding_two_sided(100, 0.1);
        assert!((b - 2.0 * (-2.0f64).exp()).abs() < 1e-12);
    }
}
