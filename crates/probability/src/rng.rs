//! Deterministic pseudo-random number generation.
//!
//! The workspace requires bit-reproducible simulations (EXPERIMENTS.md
//! records exact numbers), so we implement two well-known generators
//! in-tree rather than depending on `rand`'s value-stability policy:
//!
//! * [`SplitMix64`] — used for seeding and for cheap stateless streams.
//! * [`Xoshiro256PlusPlus`] — the workhorse generator (Blackman & Vigna).
//!
//! Both match the reference C implementations bit-for-bit (see tests).

/// A source of uniformly distributed `u64` values.
///
/// All higher-level sampling (uniform floats, Bernoulli, ranges) is
/// provided through blanket methods so any generator implementing
/// `next_u64` gets the full API.
pub trait RandomSource {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "bernoulli p must be in [0,1], got {p}"
        );
        self.next_f64() < p
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection method
    /// (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone check.
            let threshold = bound.wrapping_neg() % bound;
            if lo >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// SplitMix64 (Steele, Lea & Flood): a tiny, fast generator used here for
/// seed expansion and independent sub-streams.
///
/// ```
/// use probability::rng::{RandomSource, SplitMix64};
/// let mut rng = SplitMix64::new(0);
/// assert_eq!(rng.next_u64(), 0xE220A8397B1DCDAF);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RandomSource for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256++ (Blackman & Vigna, 2019): the workspace's default
/// generator. Seeded via SplitMix64 per the authors' recommendation.
///
/// ```
/// use probability::rng::{RandomSource, Xoshiro256PlusPlus};
/// let mut a = Xoshiro256PlusPlus::seed_from_u64(42);
/// let mut b = Xoshiro256PlusPlus::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (a fixed point of the transition).
    #[must_use]
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state.iter().any(|&w| w != 0),
            "Xoshiro256++ state must not be all zeros"
        );
        Xoshiro256PlusPlus { s: state }
    }

    /// Seeds the 256-bit state by running SplitMix64 on `seed`, as
    /// recommended by the generator's authors.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256PlusPlus::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }

    /// The 2^128-step jump: returns a generator positioned 2^128 outputs
    /// ahead of `self`, leaving `self` untouched. Useful for carving
    /// non-overlapping sub-streams for independent simulation components.
    #[must_use]
    pub fn jump(&self) -> Self {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut walker = self.clone();
        let mut acc = [0u64; 4];
        for &j in &JUMP {
            for b in 0..64 {
                if (j >> b) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(walker.s.iter()) {
                        *a ^= s;
                    }
                }
                let _ = walker.next_u64();
            }
        }
        Xoshiro256PlusPlus { s: acc }
    }
}

impl RandomSource for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vectors() {
        // Reference outputs for seed 0 from the canonical C implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn splitmix64_seed_1234567_vector() {
        // Known vector: splitmix64(1234567) first output.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        // Self-consistency: recompute with the algorithm inline.
        let mut state = 1234567u64.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let _ = &mut state;
        assert_eq!(first, z);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: state {1,2,3,4} produces 41943041 first (from the
        // xoshiro256++ test vectors used by rand_xoshiro).
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_determinism_and_divergence() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut c = Xoshiro256PlusPlus::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    #[should_panic(expected = "all zeros")]
    fn xoshiro_rejects_zero_state() {
        let _ = Xoshiro256PlusPlus::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn next_f64_in_unit_interval_with_plausible_mean() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        // Std error ≈ 1/√(12n) ≈ 0.0009; allow 5σ.
        assert!((mean - 0.5).abs() < 0.005, "mean {mean} too far from 0.5");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let p = 0.3;
        let n = 200_000;
        let hits = (0..n).filter(|_| rng.bernoulli(p)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - p).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn next_below_unbiased_small_bound() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut counts = [0usize; 7];
        let n = 700_000;
        for _ in 0..n {
            counts[rng.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / n as f64;
            assert!((freq - 1.0 / 7.0).abs() < 0.005, "freq {freq}");
        }
    }

    #[test]
    fn next_range_endpoints_reachable() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match rng.next_range(10, 13) {
                10 => saw_lo = true,
                13 => saw_hi = true,
                11 | 12 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn jump_produces_disjoint_stream_prefix() {
        let mut base = Xoshiro256PlusPlus::seed_from_u64(1);
        let before = base.clone();
        let mut jumped = base.jump();
        assert_eq!(base, before, "jump must not advance the source generator");
        let a: Vec<u64> = (0..16).map(|_| base.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| jumped.next_u64()).collect();
        assert_ne!(a, b);
    }
}
