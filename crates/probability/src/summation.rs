//! Compensated summation.
//!
//! Stationary distributions over `2Δ+1` states and Monte-Carlo averages
//! over millions of rounds accumulate rounding error under naive `+=`;
//! the routines here keep the error O(1) ulps.

/// Neumaier's improved Kahan–Babuška compensated summation.
///
/// ```
/// use probability::summation::NeumaierSum;
/// let mut s = NeumaierSum::new();
/// s.add(1e100);
/// s.add(1.0);
/// s.add(-1e100);
/// assert_eq!(s.value(), 1.0); // naive summation yields 0.0
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// Creates an empty (zero) sum.
    #[must_use]
    pub fn new() -> Self {
        NeumaierSum::default()
    }

    /// Adds a term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    #[must_use]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl std::iter::FromIterator<f64> for NeumaierSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = NeumaierSum::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for NeumaierSum {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Compensated sum of a slice.
#[must_use]
pub fn compensated_sum(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<NeumaierSum>().value()
}

/// Pairwise (cascade) summation: O(log n) error growth, cache-friendly.
#[must_use]
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    const BASE: usize = 32;
    if xs.len() <= BASE {
        let mut s = 0.0;
        for &x in xs {
            s += x;
        }
        return s;
    }
    let mid = xs.len() / 2;
    pairwise_sum(&xs[..mid]) + pairwise_sum(&xs[mid..])
}

/// Running mean/variance accumulator (Welford's algorithm).
///
/// ```
/// use probability::summation::RunningMoments;
/// let mut m = RunningMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert_eq!(m.mean(), 5.0);
/// assert_eq!(m.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningMoments::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n).
    ///
    /// # Panics
    ///
    /// Panics if no observations have been added.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        assert!(self.count > 0, "variance of empty accumulator");
        self.m2 / self.count as f64
    }

    /// Unbiased sample variance (divides by n − 1).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two observations have been added.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        assert!(
            self.count > 1,
            "sample variance needs at least 2 observations"
        );
        self.m2 / (self.count - 1) as f64
    }

    /// Standard error of the mean, `√(s²/n)`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two observations have been added.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        (self.sample_variance() / self.count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neumaier_recovers_cancelled_term() {
        let xs = [1e100, 1.0, -1e100];
        assert_eq!(compensated_sum(&xs), 1.0);
        let naive: f64 = xs.iter().sum();
        assert_eq!(naive, 0.0, "sanity: naive summation loses the 1.0");
    }

    #[test]
    fn neumaier_matches_exact_on_harmonic() {
        let xs: Vec<f64> = (1..=10_000).map(|k| 1.0 / k as f64).collect();
        let comp = compensated_sum(&xs);
        // Compare against the reverse-order compensated sum.
        let rev: Vec<f64> = xs.iter().rev().copied().collect();
        let comp_rev = compensated_sum(&rev);
        assert!((comp - comp_rev).abs() < 1e-13);
    }

    #[test]
    fn pairwise_close_to_compensated() {
        let xs: Vec<f64> = (0..100_000)
            .map(|k| ((k * 37 % 101) as f64 - 50.0) * 1e-3)
            .collect();
        let a = pairwise_sum(&xs);
        let b = compensated_sum(&xs);
        assert!((a - b).abs() < 1e-9, "pairwise {a} vs compensated {b}");
    }

    #[test]
    fn pairwise_empty_and_single() {
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[42.0]), 42.0);
    }

    #[test]
    fn running_moments_known_dataset() {
        let mut m = RunningMoments::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.population_variance(), 4.0);
        assert!((m.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!(m.standard_error() > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty accumulator")]
    fn variance_of_empty_panics() {
        let _ = RunningMoments::new().population_variance();
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: NeumaierSum = [1.0, 2.0, 3.0].into_iter().collect();
        s.extend([4.0, 5.0]);
        assert_eq!(s.value(), 15.0);
    }
}
