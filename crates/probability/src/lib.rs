#![forbid(unsafe_code)]
//! Numerical substrate for the blockchain-consistency workspace.
//!
//! This crate is intentionally dependency-free so that every downstream
//! simulation result is bit-reproducible. It provides:
//!
//! * [`special`] — log-gamma, log-binomial-coefficient, regularized
//!   incomplete beta, error function.
//! * [`logfloat`] — [`LogFloat`](logfloat::LogFloat), a non-negative real
//!   stored as its natural logarithm, for quantities like `ᾱ^{2Δ}` with
//!   `Δ = 10¹³` that underflow `f64`.
//! * [`binomial`], [`bernoulli`], [`geometric`] — the distributions the
//!   paper's round model is built from (Eqs. 7–9 of the paper).
//! * [`chernoff`] — relative entropy and the binomial tail bounds used in
//!   Inequality (49) (Arratia–Gordon) plus standard multiplicative
//!   Chernoff and Hoeffding bounds.
//! * [`rootfind`] — bisection and Brent's method, used to invert bound
//!   curves (e.g. solving `2µ/ln(µ/ν) = c` for `ν_max`).
//! * [`rare_event`] — the per-level product estimate and relative-error
//!   accounting behind the multilevel-splitting rare-event estimator.
//! * [`rng`] — deterministic SplitMix64 / Xoshiro256++ generators.
//! * [`summation`] — compensated (Neumaier) and pairwise summation.
//!
//! # Example
//!
//! ```
//! use probability::binomial::Binomial;
//!
//! // Number of honest blocks mined in one round: binom(µn, p).
//! let x = Binomial::new(90_000, 1e-9)?;
//! let alpha = x.prob_positive();        // α = 1 - (1-p)^{µn}
//! let alpha1 = x.pmf(1);                // α₁
//! assert!(alpha1 < alpha && alpha < 1e-3);
//! # Ok::<(), probability::Error>(())
//! ```

pub mod bernoulli;
pub mod binomial;
pub mod chernoff;
pub mod discrete;
pub mod geometric;
pub mod logfloat;
pub mod poisson;
pub mod rare_event;
pub mod rng;
pub mod rootfind;
pub mod special;
pub mod summation;

mod error;

pub use error::Error;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
