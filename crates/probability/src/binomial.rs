//! The binomial distribution `binom(n, p)`.
//!
//! This is the paper's fundamental modelling object: the number of blocks
//! mined by the `µn` honest miners in one round follows `binom(µn, p)`
//! (Eqs. 7–9), and the adversary's block count over `T` rounds follows
//! `binom(Tνn, p)` (Eq. 27).

use crate::geometric::Geometric;
use crate::rng::RandomSource;
use crate::special::{ln_choose, reg_inc_beta};
use crate::{Error, Result};

/// A binomial distribution with `n` trials and success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates `binom(n, p)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `p ∈ [0, 1]` and `p` is
    /// finite.
    ///
    /// ```
    /// use probability::binomial::Binomial;
    /// let d = Binomial::new(10, 0.5)?;
    /// assert_eq!(d.n(), 10);
    /// # Ok::<(), probability::Error>(())
    /// ```
    pub fn new(n: u64, p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(Error::invalid("p", format!("must lie in [0, 1], got {p}")));
        }
        Ok(Binomial { n, p })
    }

    /// Number of trials.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Per-trial success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `np`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `np(1-p)`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Natural log of the probability mass `ln P[X = k]`.
    ///
    /// Returns `-inf` for `k > n`.
    #[must_use]
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_choose(self.n, k) + k as f64 * self.p.ln() + (self.n - k) as f64 * (-self.p).ln_1p()
    }

    /// Probability mass `P[X = k]`.
    ///
    /// ```
    /// use probability::binomial::Binomial;
    /// let d = Binomial::new(4, 0.5)?;
    /// assert!((d.pmf(2) - 0.375).abs() < 1e-14);
    /// # Ok::<(), probability::Error>(())
    /// ```
    #[must_use]
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// `P[X = 0] = (1-p)^n` — the paper's `ᾱ` when `n = µn`.
    #[must_use]
    pub fn prob_zero(&self) -> f64 {
        self.ln_prob_zero().exp()
    }

    /// `ln P[X = 0] = n·ln(1-p)`, stable for tiny `p` and huge `n`.
    #[must_use]
    pub fn ln_prob_zero(&self) -> f64 {
        if self.p == 1.0 && self.n > 0 {
            return f64::NEG_INFINITY;
        }
        self.n as f64 * (-self.p).ln_1p()
    }

    /// `P[X > 0] = 1 - (1-p)^n` — the paper's `α`, computed without
    /// cancellation via `-expm1(n·ln(1-p))`.
    #[must_use]
    pub fn prob_positive(&self) -> f64 {
        -self.ln_prob_zero().exp_m1()
    }

    /// Cumulative distribution `P[X ≤ k]`.
    ///
    /// Uses the regularized incomplete beta identity
    /// `P[X ≤ k] = I_{1-p}(n-k, k+1)`; falls back to direct summation for
    /// small `n` where it is cheaper and exact.
    ///
    /// # Errors
    ///
    /// Propagates a (never observed in practice) continued-fraction
    /// convergence failure.
    pub fn cdf(&self, k: u64) -> Result<f64> {
        if k >= self.n {
            return Ok(1.0);
        }
        if self.p == 0.0 {
            return Ok(1.0);
        }
        if self.p == 1.0 {
            return Ok(0.0);
        }
        if self.n <= 64 {
            let mut acc = 0.0;
            for j in 0..=k {
                acc += self.pmf(j);
            }
            return Ok(acc.min(1.0));
        }
        reg_inc_beta((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
    }

    /// Survival function `P[X > k] = 1 - cdf(k)`, computed from the
    /// complementary incomplete beta to avoid cancellation in deep tails.
    ///
    /// # Errors
    ///
    /// Same as [`Binomial::cdf`].
    pub fn sf(&self, k: u64) -> Result<f64> {
        if k >= self.n {
            return Ok(0.0);
        }
        if self.p == 0.0 {
            return Ok(0.0);
        }
        if self.p == 1.0 {
            return Ok(1.0);
        }
        if self.n <= 64 {
            let mut acc = 0.0;
            for j in (k + 1)..=self.n {
                acc += self.pmf(j);
            }
            return Ok(acc.min(1.0));
        }
        // P[X ≥ k+1] = I_p(k+1, n-k).
        reg_inc_beta(k as f64 + 1.0, (self.n - k) as f64, self.p)
    }

    /// Smallest `k` with `cdf(k) ≥ q` (the quantile function), found by
    /// bisection over the integer support using the exact CDF.
    ///
    /// # Errors
    ///
    /// Propagates CDF evaluation errors.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<u64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile requires q in [0,1], got {q}"
        );
        if q == 0.0 {
            return Ok(0);
        }
        let (mut lo, mut hi) = (0u64, self.n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid)? >= q {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Ok(lo)
    }

    /// Draws one sample.
    ///
    /// Strategy (benchmarked in `consistency-bench`):
    /// * `n ≤ 32`: direct Bernoulli trials;
    /// * `np ≤ 30`: BINV inversion (expected O(np) iterations);
    /// * otherwise: exact integer-quantile inversion via the CDF
    ///   (O(log n) incomplete-beta evaluations).
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p == 0.0 || self.n == 0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        if self.n <= 32 {
            let mut k = 0;
            for _ in 0..self.n {
                if rng.bernoulli(self.p) {
                    k += 1;
                }
            }
            return k;
        }
        // Exploit symmetry so the inversion walks the short side.
        if self.p > 0.5 {
            let mirrored = Binomial {
                n: self.n,
                p: 1.0 - self.p,
            };
            return self.n - mirrored.sample(rng);
        }
        if self.mean() <= 30.0 {
            return self.sample_binv(rng);
        }
        // Exact inversion through the quantile function.
        let u = rng.next_f64();
        self.quantile(u.max(f64::MIN_POSITIVE))
            .expect("binomial quantile cannot fail for valid parameters")
    }

    /// Draws one sample conditioned on at least one success, i.e. from
    /// `X | X ≥ 1`.
    ///
    /// Together with [`Binomial::gap_geometric`] this supports
    /// quiet-round fast-forwarding: instead of sampling every round's
    /// block count, sample the geometric gap to the next round with a
    /// success and then the conditional count for that round. The pair
    /// `(gap, sample_positive)` is distributed exactly as the sequence
    /// of per-round samples restricted to its first non-zero entry.
    ///
    /// # Panics
    ///
    /// Panics if `P[X ≥ 1] = 0` (`n == 0` or `p == 0`), where the
    /// conditional distribution does not exist.
    pub fn sample_positive<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        assert!(
            self.n > 0 && self.p > 0.0,
            "X | X >= 1 undefined for binom({}, {})",
            self.n,
            self.p
        );
        if self.p == 1.0 {
            return self.n;
        }
        let q0 = self.prob_zero();
        // When a zero round is likely, truncated BINV from k = 1 is
        // cheap and exact. When zeros are rare (q0 tiny), rejection on
        // the unconditional sampler almost never rejects.
        if q0 >= 1e-3 {
            let r1 = self.pmf(1) / self.prob_positive();
            if r1 > 0.0 && r1.is_finite() {
                return sample_positive_binv(self.n, self.p, r1, rng);
            }
        }
        loop {
            let k = self.sample(rng);
            if k > 0 {
                return k;
            }
        }
    }

    /// The geometric distribution of the 1-based round index of the
    /// first round with at least one success, when each round draws an
    /// independent copy of this binomial — the paper's waiting time for
    /// the next block (`N^{k−1}`-then-success pattern).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `P[X ≥ 1] = 0`
    /// (`n == 0` or `p == 0`), where the gap is infinite.
    pub fn gap_geometric(&self) -> Result<Geometric> {
        Geometric::new(self.prob_positive())
    }

    /// BINV (inverse transform by sequential search from k = 0).
    fn sample_binv<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        let q = 1.0 - self.p;
        let s = self.p / q;
        let a = (self.n + 1) as f64 * s;
        let mut r = self.ln_prob_zero().exp();
        // Underflow guard: if (1-p)^n underflows, fall back to quantile
        // inversion (only reachable when np is large, excluded by caller,
        // but kept for defence in depth).
        if r <= 0.0 {
            let u = rng.next_f64();
            return self
                .quantile(u.max(f64::MIN_POSITIVE))
                .expect("binomial quantile cannot fail for valid parameters");
        }
        let mut u = rng.next_f64();
        let mut k = 0u64;
        loop {
            if u < r {
                return k;
            }
            u -= r;
            k += 1;
            if k > self.n {
                // Floating-point leakage past the support: clamp.
                return self.n;
            }
            r *= a / k as f64 - s;
        }
    }
}

/// Truncated BINV over `k ∈ {1, …, n}` with precomputed first mass
/// `r1 = P[X = 1 | X ≥ 1]` — the reference implementation backing
/// [`Binomial::sample_positive`]. (`nakamoto_sim`'s mining oracle keeps
/// its own copy of this recurrence with a per-run ratio cache; its
/// correctness is pinned to this one by the oracle's statistical
/// tests.)
pub fn sample_positive_binv<R: RandomSource + ?Sized>(n: u64, p: f64, r1: f64, rng: &mut R) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = (n + 1) as f64 * s;
    let mut r = r1;
    let mut u = rng.next_f64();
    let mut k = 1u64;
    loop {
        if u < r {
            return k;
        }
        u -= r;
        k += 1;
        if k > n {
            // Floating-point leakage past the support: clamp.
            return n;
        }
        r *= a / k as f64 - s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn rejects_bad_p() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one_small_n() {
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let d = Binomial::new(12, p).unwrap();
            let total: f64 = (0..=12).map(|k| d.pmf(k)).sum();
            assert!(close(total, 1.0, 1e-12), "p={p} total={total}");
        }
    }

    #[test]
    fn pmf_known_values() {
        let d = Binomial::new(4, 0.5).unwrap();
        assert!(close(d.pmf(0), 0.0625, 1e-14));
        assert!(close(d.pmf(2), 0.375, 1e-14));
        assert_eq!(d.pmf(5), 0.0);
    }

    #[test]
    fn moments() {
        let d = Binomial::new(100, 0.3).unwrap();
        assert!(close(d.mean(), 30.0, 1e-14));
        assert!(close(d.variance(), 21.0, 1e-14));
    }

    #[test]
    fn paper_alpha_quantities_consistent() {
        // α = P[X>0], ᾱ = P[X=0], α₁ = P[X=1] with X ~ binom(µn, p).
        let mu_n = 90_000u64;
        let p = 1e-9;
        let d = Binomial::new(mu_n, p).unwrap();
        let alpha_bar = d.prob_zero();
        let alpha = d.prob_positive();
        let alpha1 = d.pmf(1);
        assert!(close(alpha + alpha_bar, 1.0, 1e-12));
        // α₁ = pµn(1-p)^{µn-1}.
        let expected_alpha1 = p * mu_n as f64 * ((mu_n - 1) as f64 * (-p).ln_1p()).exp();
        assert!(close(alpha1, expected_alpha1, 1e-10));
        // For tiny p, α ≈ µnp.
        assert!(close(alpha, mu_n as f64 * p, 1e-4));
    }

    #[test]
    fn prob_positive_no_cancellation() {
        // p so small that 1-(1-p)^n cancels in naive arithmetic.
        let d = Binomial::new(1000, 1e-18).unwrap();
        let naive = 1.0 - (1.0 - 1e-18f64).powi(1000);
        assert_eq!(naive, 0.0, "sanity: naive computation underflows");
        assert!(close(d.prob_positive(), 1000.0 * 1e-18, 1e-9));
    }

    #[test]
    fn cdf_matches_direct_sum_large_n() {
        let d = Binomial::new(500, 0.02).unwrap();
        for k in [0u64, 1, 5, 10, 20, 100] {
            let direct: f64 = (0..=k).map(|j| d.pmf(j)).sum();
            let via_beta = d.cdf(k).unwrap();
            assert!(
                close(direct, via_beta, 1e-10),
                "k={k}: {direct} vs {via_beta}"
            );
        }
    }

    #[test]
    fn cdf_sf_complementary() {
        let d = Binomial::new(200, 0.1).unwrap();
        for k in [0u64, 3, 19, 20, 21, 50, 199, 200] {
            let c = d.cdf(k).unwrap();
            let s = d.sf(k).unwrap();
            assert!(close(c + s, 1.0, 1e-10), "k={k}");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Binomial::new(300, 0.25).unwrap();
        for &q in &[1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-9] {
            let k = d.quantile(q).unwrap();
            assert!(d.cdf(k).unwrap() >= q);
            if k > 0 {
                assert!(d.cdf(k - 1).unwrap() < q);
            }
        }
    }

    #[test]
    fn degenerate_distributions() {
        let zero = Binomial::new(50, 0.0).unwrap();
        let one = Binomial::new(50, 1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
        assert_eq!(zero.sample(&mut rng), 0);
        assert_eq!(one.sample(&mut rng), 50);
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(one.pmf(50), 1.0);
        assert_eq!(one.prob_zero(), 0.0);
    }

    #[test]
    fn sampling_mean_matches_binv_regime() {
        let d = Binomial::new(10_000, 0.001).unwrap(); // np = 10 → BINV
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
        let trials = 20_000;
        let mut sum = 0u64;
        for _ in 0..trials {
            sum += d.sample(&mut rng);
        }
        let mean = sum as f64 / trials as f64;
        // σ/√trials ≈ 0.022; allow 6σ.
        assert!((mean - 10.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn sampling_mean_matches_quantile_regime() {
        let d = Binomial::new(10_000, 0.02).unwrap(); // np = 200 → quantile path
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(43);
        let trials = 2_000;
        let mut sum = 0u64;
        for _ in 0..trials {
            let s = d.sample(&mut rng);
            assert!(s <= 10_000);
            sum += s;
        }
        let mean = sum as f64 / trials as f64;
        // σ = 14, σ/√trials ≈ 0.31; allow 6σ.
        assert!((mean - 200.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn sampling_symmetric_p_above_half() {
        let d = Binomial::new(1_000, 0.97).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(44);
        let trials = 5_000;
        let mut sum = 0u64;
        for _ in 0..trials {
            sum += d.sample(&mut rng);
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - 970.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn sample_positive_matches_conditional_pmf() {
        // Rare-success regime: q0 large, truncated-BINV path.
        let d = Binomial::new(100, 1e-2).unwrap(); // np = 1
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(46);
        let trials = 200_000;
        let mut counts = [0u64; 8];
        for _ in 0..trials {
            let k = d.sample_positive(&mut rng);
            assert!(
                (1..=100).contains(&k),
                "k = {k} outside conditional support"
            );
            counts[(k as usize).min(7)] += 1;
        }
        let p_pos = d.prob_positive();
        for k in 1..=6u64 {
            let freq = counts[k as usize] as f64 / trials as f64;
            let expected = d.pmf(k) / p_pos;
            assert!(
                (freq - expected).abs() < 0.01,
                "k={k} freq={freq} expected={expected}"
            );
        }
    }

    #[test]
    fn sample_positive_rejection_regime() {
        // Common-success regime: q0 tiny, rejection path.
        let d = Binomial::new(10_000, 0.02).unwrap(); // np = 200
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(47);
        let mut sum = 0u64;
        let trials = 2_000;
        for _ in 0..trials {
            let k = d.sample_positive(&mut rng);
            assert!(k >= 1);
            sum += k;
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - 200.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn sample_positive_rejects_impossible_success() {
        let d = Binomial::new(10, 0.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
        d.sample_positive(&mut rng);
    }

    #[test]
    fn gap_geometric_mean_is_inverse_alpha() {
        let d = Binomial::new(1_000, 1e-3).unwrap();
        let g = d.gap_geometric().unwrap();
        assert!((g.p() - d.prob_positive()).abs() < 1e-15);
        assert!((g.mean() - 1.0 / d.prob_positive()).abs() < 1e-9);
        assert!(Binomial::new(0, 0.5).unwrap().gap_geometric().is_err());
        assert!(Binomial::new(5, 0.0).unwrap().gap_geometric().is_err());
    }

    #[test]
    fn small_n_direct_sampling_exactness() {
        let d = Binomial::new(8, 0.5).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(45);
        let trials = 100_000;
        let mut counts = [0u64; 9];
        for _ in 0..trials {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        for k in 0..=8u64 {
            let freq = counts[k as usize] as f64 / trials as f64;
            assert!(
                (freq - d.pmf(k)).abs() < 0.01,
                "k={k} freq={freq} pmf={}",
                d.pmf(k)
            );
        }
    }
}

// Deterministic randomized sweeps (in-tree RNG; proptest is unavailable
// in the offline build environment).
#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::rng::{RandomSource, SplitMix64};

    const CASES: usize = 256;

    #[test]
    fn pmf_nonnegative_and_at_most_one() {
        let mut rng = SplitMix64::new(0xB1_01);
        for _ in 0..CASES {
            let n = rng.next_below(2_000);
            let p = rng.next_f64();
            let k = rng.next_below(2_500);
            let d = Binomial::new(n, p).unwrap();
            let v = d.pmf(k);
            assert!(
                (0.0..=1.0 + 1e-12).contains(&v),
                "pmf out of range: n={n} p={p} k={k} v={v}"
            );
        }
    }

    #[test]
    fn cdf_monotone() {
        let mut rng = SplitMix64::new(0xB1_02);
        for _ in 0..CASES {
            let n = rng.next_range(1, 499);
            let p = 0.001 + rng.next_f64() * 0.998;
            let k = rng.next_below(499);
            let d = Binomial::new(n, p).unwrap();
            let a = d.cdf(k).unwrap();
            let b = d.cdf(k + 1).unwrap();
            assert!(b + 1e-12 >= a, "cdf not monotone: n={n} p={p} k={k}");
        }
    }

    #[test]
    fn alpha_identity() {
        // α + ᾱ = 1 must hold to high precision in all regimes.
        let mut rng = SplitMix64::new(0xB1_03);
        for _ in 0..CASES {
            let n = rng.next_range(1, 99_999);
            // log-uniform p in [1e-12, 0.5).
            let p = 1e-12 * (0.5 / 1e-12f64).powf(rng.next_f64());
            let d = Binomial::new(n, p).unwrap();
            let s = d.prob_positive() + d.prob_zero();
            assert!(
                (s - 1.0).abs() < 1e-12,
                "identity broken: n={n} p={p} s={s}"
            );
        }
    }

    #[test]
    fn positive_samples_within_conditional_support() {
        let mut rng = SplitMix64::new(0xB1_05);
        for _ in 0..CASES {
            let n = rng.next_range(1, 500);
            // log-uniform p in [1e-6, 1).
            let p = 1e-6 * (1.0 / 1e-6f64).powf(rng.next_f64() * 0.999);
            let seed = rng.next_below(1_000);
            let d = Binomial::new(n, p).unwrap();
            let mut sample_rng = crate::rng::Xoshiro256PlusPlus::seed_from_u64(seed);
            let s = d.sample_positive(&mut sample_rng);
            assert!(
                (1..=n).contains(&s),
                "conditional sample outside support: n={n} p={p} s={s}"
            );
        }
    }

    #[test]
    fn samples_within_support() {
        let mut rng = SplitMix64::new(0xB1_04);
        for _ in 0..CASES {
            let n = rng.next_below(300);
            let p = rng.next_f64();
            let seed = rng.next_below(1_000);
            let d = Binomial::new(n, p).unwrap();
            let mut sample_rng = crate::rng::Xoshiro256PlusPlus::seed_from_u64(seed);
            let s = d.sample(&mut sample_rng);
            assert!(s <= n, "sample outside support: n={n} p={p} s={s}");
        }
    }
}
