//! The geometric distribution on `{1, 2, 3, …}` — the waiting time until
//! the first `H` round (some honest block mined), which drives the
//! `N^{≥Δ}` runs in the paper's suffix Markov chain.

use crate::rng::RandomSource;
use crate::{Error, Result};

/// A geometric distribution counting the number of trials up to and
/// including the first success; support `{1, 2, …}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates `Geometric(p)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `p ∈ (0, 1]`.
    ///
    /// ```
    /// use probability::geometric::Geometric;
    /// let g = Geometric::new(0.5)?;
    /// assert_eq!(g.mean(), 2.0);
    /// # Ok::<(), probability::Error>(())
    /// ```
    pub fn new(p: f64) -> Result<Self> {
        if !(p > 0.0 && p <= 1.0) || p.is_nan() {
            return Err(Error::invalid("p", format!("must lie in (0, 1], got {p}")));
        }
        Ok(Geometric { p })
    }

    /// Success probability per trial.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `1/p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Variance `(1-p)/p²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        (1.0 - self.p) / (self.p * self.p)
    }

    /// `P[X = k] = (1-p)^{k-1} p` for `k ≥ 1`, else 0.
    #[must_use]
    pub fn pmf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        if k == 1 {
            // Avoid 0 · ln(0) when p = 1.
            return self.p;
        }
        ((k - 1) as f64 * (-self.p).ln_1p()).exp() * self.p
    }

    /// `P[X > k] = (1-p)^k` — the probability a run of `N` rounds lasts
    /// longer than `k` (used for `P[N^{≥Δ}]`-style quantities).
    #[must_use]
    pub fn sf(&self, k: u64) -> f64 {
        (k as f64 * (-self.p).ln_1p()).exp()
    }

    /// `P[X ≤ k] = 1 - (1-p)^k`.
    #[must_use]
    pub fn cdf(&self, k: u64) -> f64 {
        -(k as f64 * (-self.p).ln_1p()).exp_m1()
    }

    /// Draws one sample by inversion: `⌈ln U / ln(1-p)⌉`.
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p == 1.0 {
            return 1;
        }
        let u = loop {
            let u = rng.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let v = (u.ln() / (-self.p).ln_1p()).ceil();
        (v.max(1.0)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;

    #[test]
    fn rejects_bad_p() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::new(f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let g = Geometric::new(0.3).unwrap();
        let total: f64 = (1..500).map(|k| g.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(g.pmf(0), 0.0);
    }

    #[test]
    fn cdf_sf_complementary() {
        let g = Geometric::new(0.05).unwrap();
        for k in [0u64, 1, 10, 100] {
            assert!((g.cdf(k) + g.sf(k) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_and_variance() {
        let g = Geometric::new(0.25).unwrap();
        assert_eq!(g.mean(), 4.0);
        assert_eq!(g.variance(), 12.0);
    }

    #[test]
    fn sampling_mean() {
        let g = Geometric::new(0.1).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| g.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn degenerate_p_one() {
        let g = Geometric::new(1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        assert_eq!(g.sample(&mut rng), 1);
        assert_eq!(g.pmf(1), 1.0);
    }

    #[test]
    fn run_length_connection_to_paper() {
        // With α the per-round honest-block probability, P[run of N ≥ Δ]
        // starting after an H equals sf(Δ-1)·… — here simply check
        // sf(k) = (1-p)^k exactly.
        let alpha = 0.2;
        let g = Geometric::new(alpha).unwrap();
        for delta in [1u64, 2, 5, 10] {
            let expected = (1.0f64 - alpha).powi(delta as i32);
            assert!((g.sf(delta) - expected).abs() < 1e-12);
        }
    }
}
