//! Finite discrete distributions with O(1) sampling via Walker–Vose
//! alias tables.
//!
//! Used by `markov::walk` to step large chains: a CDF scan is O(out-
//! degree) per step, the alias table O(1) after O(k) setup.

use crate::rng::RandomSource;
use crate::{Error, Result};

/// A distribution over `0..k` sampled by the alias method.
///
/// ```
/// use probability::discrete::AliasTable;
/// use probability::rng::{RandomSource, Xoshiro256PlusPlus};
///
/// let table = AliasTable::new(&[0.2, 0.3, 0.5])?;
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let x = table.sample(&mut rng);
/// assert!(x < 3);
/// # Ok::<(), probability::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from (unnormalised) non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `weights` is empty, holds
    /// a negative/non-finite entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(Error::invalid("weights", "must be non-empty"));
        }
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if !(w >= 0.0) || !w.is_finite() {
                return Err(Error::invalid(
                    "weights",
                    format!("entry {i} must be finite and ≥ 0, got {w}"),
                ));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(Error::invalid("weights", "must not all be zero"));
        }
        let k = weights.len();
        // Scaled probabilities: mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * k as f64 / total).collect();
        let mut prob = vec![0.0; k];
        let mut alias = vec![0usize; k];
        let mut small: Vec<usize> = (0..k).filter(|&i| scaled[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..k).filter(|&i| scaled[i] >= 1.0).collect();
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: fill with certainty.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Ok(AliasTable { prob, alias })
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `false` always (the constructor rejects empty weights).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one outcome in O(1).
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> usize {
        let k = self.prob.len();
        let column = rng.next_below(k as u64) as usize;
        if rng.next_f64() < self.prob[column] {
            column
        } else {
            self.alias[column]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;

    #[test]
    fn rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn degenerate_single_outcome() {
        let t = AliasTable::new(&[5.0]).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        assert_eq!(t.len(), 4);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let n = 400_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            let expected = weights[i] / 10.0;
            assert!(
                (freq - expected).abs() < 0.005,
                "outcome {i}: freq {freq} vs {expected}"
            );
        }
    }

    #[test]
    fn zero_weight_outcome_never_sampled() {
        let t = AliasTable::new(&[0.5, 0.0, 0.5]).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        for _ in 0..50_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn skewed_weights_handled() {
        let t = AliasTable::new(&[1e-12, 1.0]).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| t.sample(&mut rng) == 0).count();
        assert!(hits < 10, "outcome with weight 1e-12 sampled {hits} times");
    }
}
