//! The Bernoulli distribution — one proof-of-work query in the paper's
//! round model succeeds with probability `p`.

use crate::rng::RandomSource;
use crate::{Error, Result};

/// A Bernoulli distribution with success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates `Bernoulli(p)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `p ∈ [0, 1]`.
    ///
    /// ```
    /// use probability::bernoulli::Bernoulli;
    /// let coin = Bernoulli::new(0.5)?;
    /// assert_eq!(coin.p(), 0.5);
    /// # Ok::<(), probability::Error>(())
    /// ```
    pub fn new(p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(Error::invalid("p", format!("must lie in [0, 1], got {p}")));
        }
        Ok(Bernoulli { p })
    }

    /// Success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean (equals `p`).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.p
    }

    /// Variance `p(1-p)`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.p * (1.0 - self.p)
    }

    /// Entropy in nats; `0` for the degenerate cases.
    #[must_use]
    pub fn entropy(&self) -> f64 {
        if self.p == 0.0 || self.p == 1.0 {
            return 0.0;
        }
        let q = 1.0 - self.p;
        -(self.p * self.p.ln() + q * q.ln())
    }

    /// Draws one trial.
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> bool {
        rng.bernoulli(self.p)
    }

    /// Number of successes among `count` independent trials.
    pub fn sample_count<R: RandomSource + ?Sized>(&self, rng: &mut R, count: u64) -> u64 {
        (0..count).filter(|_| rng.bernoulli(self.p)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;

    #[test]
    fn rejects_out_of_range() {
        assert!(Bernoulli::new(-0.5).is_err());
        assert!(Bernoulli::new(2.0).is_err());
        assert!(Bernoulli::new(f64::NAN).is_err());
    }

    #[test]
    fn moments() {
        let b = Bernoulli::new(0.25).unwrap();
        assert_eq!(b.mean(), 0.25);
        assert!((b.variance() - 0.1875).abs() < 1e-15);
    }

    #[test]
    fn entropy_maximal_at_half() {
        let fair = Bernoulli::new(0.5).unwrap();
        assert!((fair.entropy() - std::f64::consts::LN_2).abs() < 1e-15);
        assert_eq!(Bernoulli::new(0.0).unwrap().entropy(), 0.0);
        assert_eq!(Bernoulli::new(1.0).unwrap().entropy(), 0.0);
        assert!(Bernoulli::new(0.1).unwrap().entropy() < fair.entropy());
    }

    #[test]
    fn degenerate_sampling() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
        assert!(!Bernoulli::new(0.0).unwrap().sample(&mut rng));
        assert!(Bernoulli::new(1.0).unwrap().sample(&mut rng));
    }

    #[test]
    fn sample_count_frequency() {
        let b = Bernoulli::new(0.2).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(17);
        let total = b.sample_count(&mut rng, 100_000);
        let freq = total as f64 / 100_000.0;
        assert!((freq - 0.2).abs() < 0.01, "freq {freq}");
    }
}
