//! The Poisson distribution — the `p → 0`, `np → λ` limit of the
//! paper's per-round binomials. Useful for intuition checks: at
//! Figure-1 scale (`p ≈ 10⁻¹⁸`), `binom(µn, p)` and `Poisson(µnp)` are
//! indistinguishable, and `α ≈ 1 − e^{−µnp}`, `α₁ ≈ µnp·e^{−µnp}`.

use crate::rng::RandomSource;
use crate::special::ln_factorial;
use crate::{Error, Result};

/// A Poisson distribution with rate `λ > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates `Poisson(λ)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `λ > 0` and finite.
    ///
    /// ```
    /// use probability::poisson::Poisson;
    /// let d = Poisson::new(2.0)?;
    /// assert_eq!(d.mean(), 2.0);
    /// # Ok::<(), probability::Error>(())
    /// ```
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(Error::invalid(
                "lambda",
                format!("must be positive and finite, got {lambda}"),
            ));
        }
        Ok(Poisson { lambda })
    }

    /// Rate `λ` (mean and variance).
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean (equals `λ`).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Variance (equals `λ`).
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.lambda
    }

    /// `ln P[X = k] = k·ln λ − λ − ln k!`.
    #[must_use]
    pub fn ln_pmf(&self, k: u64) -> f64 {
        k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k)
    }

    /// `P[X = k]`.
    #[must_use]
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// `P[X ≤ k]` by direct summation (the rates in this workspace are
    /// small, so the sum is short).
    #[must_use]
    pub fn cdf(&self, k: u64) -> f64 {
        (0..=k).map(|j| self.pmf(j)).sum::<f64>().min(1.0)
    }

    /// Draws one sample (Knuth's multiplication method for `λ ≤ 30`,
    /// otherwise the sum of two independent halves, recursively).
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda <= 30.0 {
            let threshold = (-self.lambda).exp();
            let mut k = 0u64;
            let mut product = rng.next_f64();
            while product > threshold {
                k += 1;
                product *= rng.next_f64();
            }
            return k;
        }
        // Split the rate: Poisson(λ) = Poisson(λ/2) + Poisson(λ/2).
        let half = Poisson {
            lambda: self.lambda / 2.0,
        };
        half.sample(rng) + half.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::Binomial;
    use crate::rng::Xoshiro256PlusPlus;

    #[test]
    fn rejects_bad_lambda() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = Poisson::new(3.5).unwrap();
        let total: f64 = (0..100).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_pmf_values() {
        // Poisson(1): P[0] = P[1] = 1/e.
        let d = Poisson::new(1.0).unwrap();
        let inv_e = (-1.0f64).exp();
        assert!((d.pmf(0) - inv_e).abs() < 1e-15);
        assert!((d.pmf(1) - inv_e).abs() < 1e-15);
        assert!((d.pmf(2) - inv_e / 2.0).abs() < 1e-15);
    }

    #[test]
    fn binomial_limit_at_paper_scale() {
        // binom(µn, p) ≈ Poisson(µnp) for p = 1e-9: the paper's α, ᾱ,
        // α₁ match to ~1e-9 relative.
        let mu_n = 70_000u64;
        let p = 1e-9;
        let b = Binomial::new(mu_n, p).unwrap();
        let d = Poisson::new(mu_n as f64 * p).unwrap();
        assert!((b.prob_zero() - d.pmf(0)).abs() < 1e-12);
        assert!((b.pmf(1) - d.pmf(1)).abs() < 1e-12);
        assert!((b.pmf(2) - d.pmf(2)).abs() < 1e-12);
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let d = Poisson::new(4.0).unwrap();
        let mut prev = 0.0;
        for k in 0..30 {
            let c = d.cdf(k);
            assert!(c >= prev);
            prev = c;
        }
        assert!((d.cdf(60) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_mean_small_lambda() {
        let d = Poisson::new(2.5).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(31);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn sampling_mean_large_lambda_recursive_split() {
        let d = Poisson::new(100.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(32);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }
}
