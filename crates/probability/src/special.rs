//! Special functions: log-gamma, log-factorial, log-binomial-coefficient,
//! the regularized incomplete beta function, and the error function.
//!
//! All routines are pure `f64` with accuracy targets of ~1e-12 relative
//! error over the parameter ranges exercised by this workspace (binomial
//! CDFs with `n ≤ 10⁷`).

use crate::{Error, Result};

/// Lanczos coefficients (g = 7, n = 9), standard double-precision set.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function `ln Γ(x)` for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Examples
///
/// ```
/// use probability::special::ln_gamma;
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12); // Γ(5) = 4!
/// ```
///
/// # Panics
///
/// Panics if `x ≤ 0` (poles of Γ are not supported).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Cached `ln(k!)` for `k ≤ 255`, built lazily on first use.
fn ln_factorial_small(k: usize) -> f64 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = Vec::with_capacity(256);
        let mut acc = 0.0f64;
        t.push(0.0);
        for i in 1..256u64 {
            acc += (i as f64).ln();
            t.push(acc);
        }
        t
    });
    table[k]
}

/// Natural logarithm of the factorial `ln(k!)`.
///
/// Exact (cached) for `k < 256`; `ln Γ(k+1)` otherwise.
///
/// ```
/// use probability::special::ln_factorial;
/// assert_eq!(ln_factorial(0), 0.0);
/// assert!((ln_factorial(10) - 3628800f64.ln()).abs() < 1e-12);
/// ```
#[must_use]
pub fn ln_factorial(k: u64) -> f64 {
    if k < 256 {
        ln_factorial_small(k as usize)
    } else {
        ln_gamma(k as f64 + 1.0)
    }
}

/// Natural logarithm of the binomial coefficient `ln C(n, k)`.
///
/// Returns `-inf` for `k > n` (the coefficient is zero).
///
/// ```
/// use probability::special::ln_choose;
/// assert!((ln_choose(10, 3) - 120f64.ln()).abs() < 1e-12);
/// assert_eq!(ln_choose(3, 10), f64::NEG_INFINITY);
/// ```
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln(1 + x)` accurate for tiny `|x|`; thin wrapper kept for discoverability.
#[inline]
#[must_use]
pub fn ln_1p(x: f64) -> f64 {
    x.ln_1p()
}

/// Numerically stable `ln(1 - exp(x))` for `x < 0`.
///
/// Used to compute `ln α = ln(1 - ᾱ)` from `ln ᾱ` without catastrophic
/// cancellation when `ᾱ` is close to 0 or 1.
///
/// # Panics
///
/// Panics if `x ≥ 0` (the argument of the outer log would be non-positive).
#[must_use]
pub fn ln_1m_exp(x: f64) -> f64 {
    assert!(x < 0.0, "ln_1m_exp requires x < 0, got {x}");
    // Split at ln(1/2) per Mächler (2012).
    if x > -std::f64::consts::LN_2 {
        (-x.exp_m1()).ln()
    } else {
        (-x.exp()).ln_1p()
    }
}

/// Maximum iterations for the incomplete-beta continued fraction.
const BETA_CF_MAX_ITER: usize = 400;
const BETA_CF_EPS: f64 = 1e-15;

/// Continued-fraction evaluation for the regularized incomplete beta
/// function (Lentz's algorithm, as in Numerical Recipes `betacf`).
fn beta_cont_frac(a: f64, b: f64, x: f64) -> Result<f64> {
    let tiny = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0f64;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < tiny {
        d = tiny;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=BETA_CF_MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < BETA_CF_EPS {
            return Ok(h);
        }
    }
    Err(Error::NoConvergence {
        procedure: "incomplete_beta",
        iterations: BETA_CF_MAX_ITER,
    })
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]`.
///
/// This is the CDF of the Beta(a, b) distribution and yields exact binomial
/// tails through `P[X ≥ k] = I_p(k, n-k+1)`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when a parameter is out of domain and
/// [`Error::NoConvergence`] if the continued fraction stalls (not observed
/// in practice for the ranges used here).
///
/// ```
/// use probability::special::reg_inc_beta;
/// // I_x(1, 1) is the identity.
/// assert!((reg_inc_beta(1.0, 1.0, 0.3)? - 0.3).abs() < 1e-14);
/// # Ok::<(), probability::Error>(())
/// ```
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    if !(a > 0.0) || !a.is_finite() {
        return Err(Error::invalid(
            "a",
            format!("must be finite and > 0, got {a}"),
        ));
    }
    if !(b > 0.0) || !b.is_finite() {
        return Err(Error::invalid(
            "b",
            format!("must be finite and > 0, got {b}"),
        ));
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(Error::invalid("x", format!("must lie in [0, 1], got {x}")));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (-x).ln_1p();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(ln_front.exp() * beta_cont_frac(a, b, x)? / a)
    } else {
        Ok(1.0 - ln_front.exp() * beta_cont_frac(b, a, 1.0 - x)? / b)
    }
}

/// Error function `erf(x)`, accurate to ~1.2e-7 absolute (Abramowitz &
/// Stegun 7.1.26 with the sign extension), sufficient for the normal-tail
/// sanity checks in tests; not used on any accuracy-critical path.
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF `Φ(x)` via [`erf`].
#[must_use]
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
            "expected {a} ≈ {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_integers_match_factorials() {
        let mut fact = 1.0f64;
        for k in 1u64..=20 {
            assert_close(ln_gamma(k as f64), fact.ln(), 1e-13);
            fact *= k as f64;
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert_close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-13);
        // Γ(3/2) = √π / 2.
        assert_close(
            ln_gamma(1.5),
            0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2,
            1e-13,
        );
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25) ≈ 3.625609908.
        assert_close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-10);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_crosses_table_boundary() {
        // Consistency between the cached table and the ln_gamma branch.
        let a = ln_factorial(255);
        let b = ln_gamma(256.0);
        assert_close(a, b, 1e-12);
        let c = ln_factorial(256);
        assert_close(c, b + 256f64.ln(), 1e-12);
    }

    #[test]
    fn ln_choose_symmetry_and_pascal() {
        for n in 0u64..40 {
            for k in 0..=n {
                assert_close(ln_choose(n, k), ln_choose(n, n - k), 1e-11);
            }
        }
        // Pascal: C(n, k) = C(n-1, k-1) + C(n-1, k) — check in linear space.
        for n in 1u64..30 {
            for k in 1..n {
                let lhs = ln_choose(n, k).exp();
                let rhs = ln_choose(n - 1, k - 1).exp() + ln_choose(n - 1, k).exp();
                assert_close(lhs, rhs, 1e-10);
            }
        }
    }

    #[test]
    fn ln_1m_exp_matches_naive_where_safe() {
        for &x in &[-0.01f64, -0.5, -1.0, -5.0, -30.0] {
            let naive = (1.0 - x.exp()).ln();
            assert_close(ln_1m_exp(x), naive, 1e-12);
        }
    }

    #[test]
    fn ln_1m_exp_tiny_argument() {
        // For x = -1e-15, 1 - e^x ≈ 1e-15; ln ≈ -34.54.
        let v = ln_1m_exp(-1e-15);
        assert_close(v, (1e-15f64).ln(), 1e-6);
    }

    #[test]
    fn reg_inc_beta_uniform_identity() {
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            assert_close(reg_inc_beta(1.0, 1.0, x).unwrap(), x, 1e-13);
        }
    }

    #[test]
    fn reg_inc_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (10.0, 3.0, 0.7), (0.5, 0.5, 0.2)] {
            let lhs = reg_inc_beta(a, b, x).unwrap();
            let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
            assert_close(lhs, rhs, 1e-12);
        }
    }

    #[test]
    fn reg_inc_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.25}(2,2) = 3x² - 2x³ at 0.25.
        assert_close(reg_inc_beta(2.0, 2.0, 0.5).unwrap(), 0.5, 1e-12);
        let x: f64 = 0.25;
        assert_close(
            reg_inc_beta(2.0, 2.0, x).unwrap(),
            3.0 * x * x - 2.0 * x * x * x,
            1e-12,
        );
    }

    #[test]
    fn reg_inc_beta_rejects_bad_domain() {
        assert!(reg_inc_beta(0.0, 1.0, 0.5).is_err());
        assert!(reg_inc_beta(1.0, -1.0, 0.5).is_err());
        assert!(reg_inc_beta(1.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 rational approximation has ~1.5e-7 absolute error.
        assert!(erf(0.0).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 2e-7);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn std_normal_cdf_median_and_tails() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!(std_normal_cdf(-8.0) < 1e-14);
    }
}
