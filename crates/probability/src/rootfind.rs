//! Scalar root finding: bisection and Brent's method.
//!
//! Used throughout `consistency-core` to invert bound curves, e.g. solving
//! `2µ/ln(µ/ν) = c` for `ν_max` on Figure 1's magenta line.

use crate::{Error, Result};

/// Configuration for the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootConfig {
    /// Absolute tolerance on the root location.
    pub x_tol: f64,
    /// Absolute tolerance on the residual `|f(x)|`.
    pub f_tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for RootConfig {
    fn default() -> Self {
        RootConfig {
            x_tol: 1e-14,
            f_tol: 0.0,
            max_iter: 200,
        }
    }
}

/// Finds a root of `f` on `[lo, hi]` by bisection.
///
/// # Errors
///
/// * [`Error::NoBracket`] if `f(lo)` and `f(hi)` have the same sign.
/// * [`Error::NoConvergence`] if the tolerance is not reached within
///   `config.max_iter` iterations (practically unreachable: 200 bisections
///   exhaust f64 resolution).
///
/// ```
/// use probability::rootfind::{bisect, RootConfig};
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, RootConfig::default())?;
/// assert!((root - 2f64.sqrt()).abs() < 1e-12);
/// # Ok::<(), probability::Error>(())
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, config: RootConfig) -> Result<f64> {
    let (mut lo, mut hi) = (lo, hi);
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(Error::NoBracket { lo, hi });
    }
    for _ in 0..config.max_iter {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if f_mid == 0.0 || (hi - lo).abs() <= config.x_tol || f_mid.abs() <= config.f_tol {
            return Ok(mid);
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Err(Error::NoConvergence {
        procedure: "bisect",
        iterations: config.max_iter,
    })
}

/// Finds a root of `f` on `[lo, hi]` with Brent's method (inverse
/// quadratic interpolation + secant + bisection safeguards).
///
/// # Errors
///
/// Same contract as [`bisect`].
pub fn brent<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, config: RootConfig) -> Result<f64> {
    let (mut a, mut b) = (lo, hi);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(Error::NoBracket { lo, hi });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = a;
    for _ in 0..config.max_iter {
        if fb == 0.0 || (b - a).abs() <= config.x_tol || fb.abs() <= config.f_tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let low = (3.0 * a + b) / 4.0;
        let cond1 = !((low.min(b) < s) && (s < low.max(b)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < config.x_tol;
        let cond5 = !mflag && (c - d).abs() < config.x_tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(Error::NoConvergence {
        procedure: "brent",
        iterations: config.max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, RootConfig::default()).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, RootConfig::default()).unwrap(), 0.0);
        assert_eq!(
            bisect(|x| x - 1.0, 0.0, 1.0, RootConfig::default()).unwrap(),
            1.0
        );
    }

    #[test]
    fn bisect_no_bracket() {
        let e = bisect(|x| x * x + 1.0, -1.0, 1.0, RootConfig::default());
        assert!(matches!(e, Err(Error::NoBracket { .. })));
    }

    #[test]
    fn brent_matches_bisect_on_transcendental() {
        let f = |x: f64| x.exp() - 3.0;
        let cfg = RootConfig::default();
        let rb = bisect(f, 0.0, 2.0, cfg).unwrap();
        let rn = brent(f, 0.0, 2.0, cfg).unwrap();
        assert!((rb - 3f64.ln()).abs() < 1e-11);
        assert!((rn - 3f64.ln()).abs() < 1e-11);
    }

    #[test]
    fn brent_hard_flat_function() {
        // f is extremely flat near the root: x^9.
        let r = brent(|x| x.powi(9), -1.0, 4.0, RootConfig::default()).unwrap();
        assert!(r.abs() < 2e-2, "root {r}");
    }

    #[test]
    fn brent_no_bracket() {
        let e = brent(|_| 1.0, 0.0, 1.0, RootConfig::default());
        assert!(matches!(e, Err(Error::NoBracket { .. })));
    }

    #[test]
    fn paper_numax_shape() {
        // Solve 2(1-ν)/ln((1-ν)/ν) = c for c = 3: ν_max ≈ value in (0, 0.5).
        let c = 3.0;
        let f = |nu: f64| 2.0 * (1.0 - nu) / ((1.0 - nu) / nu).ln() - c;
        let nu = brent(f, 1e-12, 0.5 - 1e-12, RootConfig::default()).unwrap();
        assert!(nu > 0.0 && nu < 0.5);
        // Verify it satisfies the equation.
        let lhs = 2.0 * (1.0 - nu) / ((1.0 - nu) / nu).ln();
        assert!((lhs - c).abs() < 1e-9);
    }

    #[test]
    fn config_clone_and_debug() {
        let cfg = RootConfig::default();
        let cfg2 = cfg;
        assert_eq!(cfg, cfg2);
        assert!(format!("{cfg:?}").contains("max_iter"));
    }
}
