//! [`LogFloat`]: a non-negative real number stored as its natural logarithm.
//!
//! The paper's central quantity `ᾱ^{2Δ}·α₁` with `Δ = 10¹³` underflows
//! `f64` catastrophically in linear space (`ᾱ^{2Δ} = exp(2Δ·µn·ln(1-p))`
//! can be `exp(-10⁸)` or smaller in parameter sweeps). All bound
//! computations in `consistency-core` therefore run on [`LogFloat`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign};

/// A non-negative real number represented by its natural logarithm.
///
/// `LogFloat::ZERO` is represented by `ln = -inf`. Multiplication and
/// division are exact (log addition); addition uses log-sum-exp.
///
/// # Examples
///
/// ```
/// use probability::logfloat::LogFloat;
///
/// let tiny = LogFloat::from_ln(-1e6);   // exp(-1e6), far below f64 range
/// let tinier = tiny * tiny;
/// assert_eq!(tinier.ln(), -2e6);
/// assert!(tinier < tiny);
/// assert_eq!(tiny / tiny, LogFloat::ONE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogFloat {
    ln: f64,
}

impl LogFloat {
    /// The number zero (`ln = -inf`).
    pub const ZERO: LogFloat = LogFloat {
        ln: f64::NEG_INFINITY,
    };
    /// The number one (`ln = 0`).
    pub const ONE: LogFloat = LogFloat { ln: 0.0 };

    /// Creates a `LogFloat` from a linear-space value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(
            value >= 0.0 && !value.is_nan(),
            "LogFloat requires a non-negative value, got {value}"
        );
        LogFloat { ln: value.ln() }
    }

    /// Creates a `LogFloat` directly from its natural logarithm.
    ///
    /// # Panics
    ///
    /// Panics if `ln_value` is NaN or `+inf`.
    #[must_use]
    pub fn from_ln(ln_value: f64) -> Self {
        assert!(
            !ln_value.is_nan() && ln_value != f64::INFINITY,
            "LogFloat logarithm must be finite or -inf, got {ln_value}"
        );
        LogFloat { ln: ln_value }
    }

    /// The natural logarithm of the value (`-inf` for zero).
    #[inline]
    #[must_use]
    pub fn ln(self) -> f64 {
        self.ln
    }

    /// Converts to linear space (may underflow to `0.0` or overflow to
    /// `+inf`; that is the caller's explicit choice).
    #[inline]
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.ln.exp()
    }

    /// Returns `true` iff the value is exactly zero.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.ln == f64::NEG_INFINITY
    }

    /// Integer power (exact in log space).
    ///
    /// ```
    /// use probability::logfloat::LogFloat;
    /// let half = LogFloat::new(0.5);
    /// assert!((half.powi(10).to_f64() - 1.0 / 1024.0).abs() < 1e-18);
    /// ```
    #[must_use]
    pub fn powi(self, exponent: i64) -> Self {
        if self.is_zero() {
            assert!(exponent > 0, "0^e undefined for e ≤ 0 in LogFloat::powi");
            return LogFloat::ZERO;
        }
        LogFloat {
            ln: self.ln * exponent as f64,
        }
    }

    /// Real power for non-negative exponents (and any exponent when the
    /// base is positive).
    #[must_use]
    pub fn powf(self, exponent: f64) -> Self {
        if self.is_zero() {
            assert!(exponent > 0.0, "0^e undefined for e ≤ 0 in LogFloat::powf");
            return LogFloat::ZERO;
        }
        LogFloat {
            ln: self.ln * exponent,
        }
    }

    /// `max(self - other, 0)` computed stably in log space.
    ///
    /// Returns [`LogFloat::ZERO`] when `other ≥ self`; callers that need
    /// signed differences should work in linear space.
    #[must_use]
    pub fn saturating_sub(self, other: LogFloat) -> LogFloat {
        if other.ln >= self.ln {
            return LogFloat::ZERO;
        }
        if other.is_zero() {
            return self;
        }
        // self - other = self * (1 - other/self); other/self < 1.
        let ratio_ln = other.ln - self.ln; // < 0
        LogFloat {
            ln: self.ln + crate::special::ln_1m_exp(ratio_ln),
        }
    }

    /// Complement `1 - self` for values in `[0, 1]`, computed stably.
    ///
    /// # Panics
    ///
    /// Panics if `self > 1`.
    #[must_use]
    pub fn complement(self) -> LogFloat {
        assert!(self.ln <= 0.0, "complement requires a value in [0, 1]");
        LogFloat::ONE.saturating_sub(self)
    }
}

impl Default for LogFloat {
    fn default() -> Self {
        LogFloat::ZERO
    }
}

impl From<f64> for LogFloat {
    fn from(value: f64) -> Self {
        LogFloat::new(value)
    }
}

impl fmt::Display for LogFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "0")
        } else if self.ln.abs() < 700.0 {
            write!(f, "{}", self.ln.exp())
        } else {
            write!(f, "exp({})", self.ln)
        }
    }
}

impl PartialOrd for LogFloat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.ln.partial_cmp(&other.ln)
    }
}

impl Mul for LogFloat {
    type Output = LogFloat;
    fn mul(self, rhs: LogFloat) -> LogFloat {
        if self.is_zero() || rhs.is_zero() {
            return LogFloat::ZERO;
        }
        LogFloat {
            ln: self.ln + rhs.ln,
        }
    }
}

impl MulAssign for LogFloat {
    fn mul_assign(&mut self, rhs: LogFloat) {
        *self = *self * rhs;
    }
}

impl Div for LogFloat {
    type Output = LogFloat;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: LogFloat) -> LogFloat {
        assert!(!rhs.is_zero(), "LogFloat division by zero");
        if self.is_zero() {
            return LogFloat::ZERO;
        }
        LogFloat {
            ln: self.ln - rhs.ln,
        }
    }
}

impl DivAssign for LogFloat {
    fn div_assign(&mut self, rhs: LogFloat) {
        *self = *self / rhs;
    }
}

impl Add for LogFloat {
    type Output = LogFloat;
    /// Log-sum-exp addition: exact to f64 rounding.
    fn add(self, rhs: LogFloat) -> LogFloat {
        if self.is_zero() {
            return rhs;
        }
        if rhs.is_zero() {
            return self;
        }
        let (hi, lo) = if self.ln >= rhs.ln {
            (self.ln, rhs.ln)
        } else {
            (rhs.ln, self.ln)
        };
        LogFloat {
            ln: hi + (lo - hi).exp().ln_1p(),
        }
    }
}

impl AddAssign for LogFloat {
    fn add_assign(&mut self, rhs: LogFloat) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for LogFloat {
    fn sum<I: Iterator<Item = LogFloat>>(iter: I) -> LogFloat {
        iter.fold(LogFloat::ZERO, |acc, x| acc + x)
    }
}

impl std::iter::Product for LogFloat {
    fn product<I: Iterator<Item = LogFloat>>(iter: I) -> LogFloat {
        iter.fold(LogFloat::ONE, |acc, x| acc * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_constants() {
        assert!(LogFloat::ZERO.is_zero());
        assert_eq!(LogFloat::ONE.to_f64(), 1.0);
        assert_eq!(LogFloat::default(), LogFloat::ZERO);
    }

    #[test]
    fn roundtrip_linear() {
        for &v in &[0.0, 1e-300, 0.25, 1.0, 3.5, 1e300] {
            let lf = LogFloat::new(v);
            assert!((lf.to_f64() - v).abs() <= 1e-12 * v.max(1e-300));
        }
    }

    #[test]
    fn multiplication_below_f64_range() {
        let a = LogFloat::from_ln(-5000.0);
        let b = LogFloat::from_ln(-7000.0);
        assert_eq!((a * b).ln(), -12000.0);
        assert_eq!((a / b).ln(), 2000.0);
    }

    #[test]
    fn addition_log_sum_exp() {
        let a = LogFloat::new(3.0);
        let b = LogFloat::new(4.0);
        assert!(((a + b).to_f64() - 7.0).abs() < 1e-12);
        // One operand dominating by far: result equals the larger.
        let big = LogFloat::from_ln(0.0);
        let tiny = LogFloat::from_ln(-1000.0);
        assert!(((big + tiny).ln() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs = [0.1, 0.2, 0.3, 0.4];
        let sum: LogFloat = xs.iter().map(|&x| LogFloat::new(x)).sum();
        assert!((sum.to_f64() - 1.0).abs() < 1e-12);
        let prod: LogFloat = xs.iter().map(|&x| LogFloat::new(x)).product();
        assert!((prod.to_f64() - 0.0024).abs() < 1e-14);
    }

    #[test]
    fn saturating_sub_basic() {
        let a = LogFloat::new(0.75);
        let b = LogFloat::new(0.5);
        assert!((a.saturating_sub(b).to_f64() - 0.25).abs() < 1e-14);
        assert_eq!(b.saturating_sub(a), LogFloat::ZERO);
        assert_eq!(a.saturating_sub(LogFloat::ZERO), a);
    }

    #[test]
    fn complement_stable_near_one() {
        // 1 - (1 - 1e-18) should keep ~1e-18, not cancel to 0.
        let nearly_one = LogFloat::from_ln(-(1e-18f64));
        let c = nearly_one.complement();
        assert!((c.ln() - (1e-18f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn ordering() {
        let a = LogFloat::from_ln(-1e9);
        let b = LogFloat::from_ln(-1e8);
        assert!(a < b);
        assert!(LogFloat::ZERO < a);
        assert!(b < LogFloat::ONE);
    }

    #[test]
    fn powers() {
        let half = LogFloat::new(0.5);
        assert!((half.powi(3).to_f64() - 0.125).abs() < 1e-15);
        assert!((half.powf(0.5).to_f64() - 0.5f64.sqrt()).abs() < 1e-15);
        assert_eq!(LogFloat::ZERO.powi(5), LogFloat::ZERO);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = LogFloat::ONE / LogFloat::ZERO;
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_value_panics() {
        let _ = LogFloat::new(-1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(LogFloat::ZERO.to_string(), "0");
        assert_eq!(LogFloat::ONE.to_string(), "1");
        assert_eq!(LogFloat::from_ln(-1e6).to_string(), "exp(-1000000)");
    }
}
