#![forbid(unsafe_code)]
//! Umbrella crate re-exporting the full reproduction of
//! *"An Analysis of Blockchain Consistency in Asynchronous Networks:
//! Deriving a Neat Bound"* (Jun Zhao, ICDCS 2020).
//!
//! The workspace is organised bottom-up:
//!
//! * [`probability`] — numerical substrate (distributions, tail bounds,
//!   log-space arithmetic, deterministic RNG, root finding).
//! * [`markov`] — finite discrete-time Markov chains (stationary
//!   distributions, mixing times, concentration bounds, random walks).
//! * [`nakamoto_sim`] — a round-based simulator of Nakamoto's protocol in
//!   the Δ-delay asynchronous model.
//! * [`consistency_core`] — the paper's contribution: the consistency
//!   theorems, the suffix Markov chains, and the comparison bounds.
//!
//! # Quickstart
//!
//! ```
//! use blockchain_consistency::consistency_core::params::ProtocolParams;
//! use blockchain_consistency::consistency_core::numax;
//!
//! // Figure 1 setup: n = 1e5 miners, Δ = 1e13, pick c = 3.
//! let nu_max = numax::nu_max_for_c(3.0).expect("c in range");
//! assert!(nu_max > 0.0 && nu_max < 0.5);
//!
//! let params = ProtocolParams::from_c(1e5 as u64, 1e13 as u64, 3.0, nu_max / 2.0)?;
//! assert!(params.is_consistent_by_neat_bound());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use consistency_core;
pub use markov;
pub use nakamoto_sim;
pub use probability;
