//! Integration tests spanning the whole stack: analytic identities
//! (consistency-core) validated against both the generic Markov-chain
//! machinery (markov) and Monte-Carlo protocol runs (nakamoto-sim).

use blockchain_consistency::consistency_core::{
    convergence, extended_chain, numax, params::ProtocolParams, pss, suffix_chain, theorem1,
    theorem2, theorem3,
};
use blockchain_consistency::markov::{
    hitting::expected_return_time,
    mixing::mixing_time,
    stationary::{stationarity_residual, stationary_gth},
    structure,
};
use blockchain_consistency::nakamoto_sim::{
    adversary::ImmediateReleaseAdversary, execution::run_simulation,
};

/// Eq. 26 end-to-end: the paper's convergence-opportunity expectation,
/// derived three independent ways — direct formula, chain stationary
/// state, and Monte-Carlo — must agree.
#[test]
fn convergence_rate_three_way_agreement() {
    let params = ProtocolParams::new(100, 2, 1e-3, 0.2).unwrap();
    // (1) direct ᾱ^{2Δ}α₁.
    let direct = theorem1::ln_convergence_rate(&params).exp();
    // (2) through the C_{F‖P} decomposition (Eq. 40/44).
    let via_chain = extended_chain::ln_convergence_state_probability(&params)
        .unwrap()
        .exp();
    assert!((direct - via_chain).abs() < 1e-15 * direct.max(1e-300));
    // (3) Monte-Carlo (integer honest population).
    let row = convergence::validate(&params, 400_000, 99).unwrap();
    let mc_rate = row.measured_convergence as f64 / row.rounds as f64;
    let analytic_rate = row.expected_convergence / row.rounds as f64;
    assert!(
        (mc_rate - analytic_rate).abs() < 0.1 * analytic_rate,
        "MC {mc_rate} vs analytic {analytic_rate}"
    );
}

/// Fig. 2's chain, the Eq. 37 closed form, the generic GTH solver, and
/// the *simulator's* empirical suffix occupancy all describe the same
/// object.
#[test]
fn suffix_chain_four_way_agreement() {
    let params = ProtocolParams::new(100, 3, 2e-3, 0.1).unwrap();
    let cfg = params.to_sim_config(7);
    // Integer-population α as the simulator sees it.
    let alpha = -((cfg.n_honest() as f64) * (-params.p()).ln_1p()).exp_m1();
    let delta = params.delta();

    let chain = suffix_chain::build_chain(alpha, delta).unwrap();
    assert!(structure::is_ergodic(&chain));
    let closed = suffix_chain::closed_form_stationary(alpha, delta).unwrap();
    let gth = stationary_gth(&chain).unwrap();
    for (a, b) in closed.iter().zip(gth.iter()) {
        assert!((a - b).abs() < 1e-12);
    }
    assert!(stationarity_residual(&chain, &closed) < 1e-13);

    let report = run_simulation(cfg, Box::new(ImmediateReleaseAdversary::new()), 500_000);
    assert!(report.suffix_rounds > 400_000);
    for (i, (&count, &expected)) in report
        .suffix_occupancy
        .iter()
        .zip(closed.iter())
        .enumerate()
    {
        let freq = count as f64 / report.suffix_rounds as f64;
        assert!(
            (freq - expected).abs() < 0.01,
            "state {i}: simulated {freq} vs closed-form {expected}"
        );
    }
}

/// Kac's formula ties the markov crate's hitting times to the paper's
/// Eq. 37c on the explicitly built chain.
#[test]
fn kac_return_time_matches_eq_37c() {
    let alpha = 0.15;
    let delta = 5;
    let chain = suffix_chain::build_chain(alpha, delta).unwrap();
    let pi = suffix_chain::closed_form_stationary(alpha, delta).unwrap();
    let long_gap = delta as usize;
    let ret = expected_return_time(&chain, long_gap).unwrap();
    assert!((ret - 1.0 / pi[long_gap]).abs() < 1e-6 * ret);
}

/// The theorem chain is mutually coherent: Theorem 2 at (ε₁, ε₂) ⇒
/// Theorem 3 ⇒ Theorem 1 with the Eq. 60/61 constants.
#[test]
fn theorem_chain_implications() {
    for &nu in &[0.1, 0.25, 0.4] {
        for &delta in &[16u64, 4_096] {
            let eps1 = 0.25;
            let eps2 = 0.25;
            let bound = theorem2::c_bound(nu, delta, eps1, eps2).unwrap();
            let params = ProtocolParams::from_c(50_000, delta, bound * 1.01, nu).unwrap();
            assert!(theorem2::holds(&params, eps1, eps2).unwrap());
            assert!(theorem3::holds(&params, eps1, eps2));
            let consts = theorem3::Constants::new(eps1, eps2, nu).unwrap();
            assert!(
                theorem1::holds(&params, consts.delta1),
                "ν={nu}, Δ={delta}: Theorem 1 must follow from Theorem 3"
            );
        }
    }
}

/// Figure 1's ordering holds simultaneously in analytic curves and in
/// the finite-Δ Theorem-2 solver.
#[test]
fn figure1_ordering_with_finite_delta() {
    for &c in &[2.5, 5.0, 20.0] {
        let ours_asymptotic = numax::nu_max_for_c(c).unwrap();
        let ours_finite = numax::nu_max_theorem2(c, 10_000_000_000_000).unwrap();
        let blue = pss::consistency_nu_max(c).unwrap();
        let red = pss::attack_nu_threshold(c);
        assert!(ours_finite <= ours_asymptotic + 1e-9);
        assert!(
            ours_finite > blue,
            "c={c}: finite-Δ ours must still beat PSS"
        );
        assert!(red > ours_asymptotic);
    }
}

/// The mixing-time surrogate used in Ineq. (47) upper-bounds the true
/// 1/8-mixing time of the explicitly built C_F for small Δ.
#[test]
fn mixing_surrogate_dominates_true_mixing_time() {
    for &(alpha, delta) in &[(0.2f64, 2u64), (0.1, 4), (0.4, 3)] {
        let chain = suffix_chain::build_chain(alpha, delta).unwrap();
        let pi = suffix_chain::closed_form_stationary(alpha, delta).unwrap();
        let tau = mixing_time(&chain, &pi, 0.125, 2_000_000).unwrap() as u64;
        // Surrogate for C_F alone is ⌈ln 8/α⌉ + 2Δ.
        let surrogate = (8f64.ln() / alpha).ceil() as u64 + 2 * delta;
        assert!(
            surrogate >= tau,
            "α={alpha}, Δ={delta}: surrogate {surrogate} < true τ {tau}"
        );
    }
}

/// End-to-end determinism: the full stack (params → sim → report) is
/// bit-reproducible for a fixed seed.
#[test]
fn full_stack_determinism() {
    let params = ProtocolParams::new(200, 4, 5e-4, 0.3).unwrap();
    let a = convergence::validate(&params, 100_000, 2024).unwrap();
    let b = convergence::validate(&params, 100_000, 2024).unwrap();
    assert_eq!(a.report, b.report);
    assert_eq!(a.measured_suffix, b.measured_suffix);
}
