//! Integration tests for the *predictive* content of the paper's bound:
//! below the neat bound the simulated protocol keeps consistency; under
//! attack above the attack line it loses it.

use blockchain_consistency::consistency_core::{numax, params::ProtocolParams, theorem1};
use blockchain_consistency::nakamoto_sim::adversary::{BalanceAdversary, PrivateChainAdversary};
use blockchain_consistency::nakamoto_sim::config::SimConfig;
use blockchain_consistency::nakamoto_sim::execution::run_simulation;

const ROUNDS: u64 = 150_000;

/// In the regime the paper certifies (c comfortably above the neat
/// bound), a private-chain adversary cannot cause deep reorgs.
#[test]
fn safe_regime_stays_consistent_under_private_attack() {
    let nu = 0.15;
    let neat = numax::c_required(nu);
    // c three times the bound.
    let cfg = SimConfig::from_c(100, 4, neat * 3.0, nu, 42).unwrap();
    let report = run_simulation(cfg, Box::new(PrivateChainAdversary::new(4)), ROUNDS);
    assert!(
        report.is_consistent(12),
        "reorg depth {} / divergence {} at 3× the neat bound",
        report.max_reorg_depth,
        report.max_divergence_depth
    );
    // Lemma 1's margin is decisively positive.
    assert!(report.convergence_margin() > 0);
}

/// Well below the bound with a strong adversary, consistency fails
/// empirically (deep reorgs appear).
#[test]
fn unsafe_regime_breaks_under_private_attack() {
    // c = 0.3, ν = 0.45: far left of Figure 1, above every curve.
    let cfg = SimConfig::from_c(100, 4, 0.3, 0.45, 43).unwrap();
    let report = run_simulation(cfg, Box::new(PrivateChainAdversary::new(4)), ROUNDS);
    assert!(
        !report.is_consistent(12),
        "expected deep reorgs, got max depth {}",
        report.max_reorg_depth
    );
    // And Theorem 1's analytic margin is negative there too.
    let params = ProtocolParams::from_c(100, 4, 0.3, 0.45).unwrap();
    assert!(theorem1::ln_margin(&params) < 0.0);
}

/// The balance attack splits views when the adversary outpaces
/// convergence opportunities, and fails to when it does not.
#[test]
fn balance_attack_contrast_across_bound() {
    let nu_weak = 0.08;
    let nu_strong = 0.45;
    let c = 0.8;
    let weak_cfg = SimConfig::from_c(100, 4, c, nu_weak, 44).unwrap();
    let strong_cfg = SimConfig::from_c(100, 4, c, nu_strong, 44).unwrap();
    let weak = run_simulation(weak_cfg, Box::new(BalanceAdversary::new(4)), ROUNDS);
    let strong = run_simulation(strong_cfg, Box::new(BalanceAdversary::new(4)), ROUNDS);
    assert!(
        strong.max_divergence_depth > weak.max_divergence_depth,
        "strong adversary divergence {} should exceed weak {}",
        strong.max_divergence_depth,
        weak.max_divergence_depth
    );
    assert!(
        strong.max_divergence_depth >= 12,
        "ν = 0.45 at c = 0.8 should break 12-consistency, got {}",
        strong.max_divergence_depth
    );
}

/// Chain quality stays near 1 − ν/µ under honest behaviour and degrades
/// under withholding (the §II chain-quality shape).
#[test]
fn chain_quality_shape() {
    let nu = 0.3;
    let cfg = SimConfig::from_c(200, 4, 2.0, nu, 45).unwrap();
    let honest = run_simulation(
        cfg,
        Box::new(blockchain_consistency::nakamoto_sim::adversary::ImmediateReleaseAdversary::new()),
        ROUNDS,
    );
    // Honest-behaving adversary: quality ≈ µ share of blocks.
    let q = honest.chain_quality();
    assert!(
        (q - 0.7).abs() < 0.1,
        "quality {q} should track the honest fraction"
    );
    let attack_cfg = SimConfig::from_c(200, 4, 2.0, nu, 46).unwrap();
    let attacked = run_simulation(attack_cfg, Box::new(PrivateChainAdversary::new(4)), ROUNDS);
    // Withholding can only waste honest blocks, never improve quality
    // beyond the honest-mining share by a margin.
    assert!(attacked.chain_quality() <= q + 0.05);
}

/// Consistency margin sign flips across the neat bound, simulated at
/// the bound's own scale (Lemma 1's race, Eqs. 26/27).
#[test]
fn convergence_margin_sign_tracks_neat_bound() {
    let nu = 0.25;
    let neat = numax::c_required(nu);
    // Above the bound.
    let above = SimConfig::from_c(100, 2, neat * 2.0, nu, 47).unwrap();
    let above_report = run_simulation(above, Box::new(PrivateChainAdversary::new(2)), 400_000);
    assert!(
        above_report.convergence_margin() > 0,
        "C − A = {} at 2× the bound",
        above_report.convergence_margin()
    );
    // Clearly below the bound.
    let below = SimConfig::from_c(100, 2, neat * 0.25, nu, 48).unwrap();
    let below_report = run_simulation(below, Box::new(PrivateChainAdversary::new(2)), 400_000);
    assert!(
        below_report.convergence_margin() < 0,
        "C − A = {} at a quarter of the bound",
        below_report.convergence_margin()
    );
}
