//! Quickstart: check the paper's consistency bounds for a parameter
//! point, then validate the analytical rates against a short simulation.
//!
//! Run with: `cargo run --example quickstart`

use blockchain_consistency::consistency_core::{
    convergence, numax, params::ProtocolParams, pss, theorem1, theorem2,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Analytical side: Figure 1's setting (n = 1e5, Δ = 1e13).
    // ------------------------------------------------------------------
    let n = 100_000u64;
    let delta = 10_000_000_000_000u64;
    let c = 3.0;
    let nu = 0.30;
    let params = ProtocolParams::from_c(n, delta, c, nu)?;

    println!("== Parameters (paper Table I) ==");
    println!("n = {n}, Δ = {delta:e}, ν = {nu}, c = {c}");
    println!("p = 1/(cnΔ) = {:.3e}", params.p());
    println!(
        "α  = {:.6e}   (P[some honest block / round], Eq. 7)",
        params.alpha()
    );
    println!(
        "α₁ = {:.6e}   (P[exactly one honest block], Eq. 9)",
        params.alpha1()
    );

    println!("\n== Bounds at ν = {nu} ==");
    let neat = theorem2::neat_bound(nu);
    println!(
        "this paper (Thm 2): c > 2µ/ln(µ/ν) = {neat:.4}  → {}",
        verdict(c > neat)
    );
    let pss_c = pss::consistency_c_required(nu);
    println!(
        "PSS consistency:    c > 2(1−ν)²/(1−2ν) = {pss_c:.4} → {}",
        verdict(c > pss_c)
    );
    println!(
        "PSS attack:         applies iff 1/c > 1/ν − 1/µ     → {}",
        verdict(pss::attack_applies(&params))
    );
    println!(
        "Theorem 1 margin:   ln(ᾱ^{{2Δ}}α₁) − ln(pνn) = {:+.4e}",
        theorem1::ln_margin(&params)
    );

    println!("\n== ν_max at c = {c} (Figure 1 cross-section) ==");
    println!("ours (magenta): {:.4}", numax::nu_max_for_c(c)?);
    println!(
        "PSS (blue):     {:.4}",
        pss::consistency_nu_max(c).unwrap_or(0.0)
    );
    println!("attack (red):   {:.4}", pss::attack_nu_threshold(c));

    // ------------------------------------------------------------------
    // 2. Operational side: validate Eqs. (26)/(27) on a laptop-scale run.
    // ------------------------------------------------------------------
    let small = ProtocolParams::new(100, 2, 1e-3, 0.2)?;
    let rounds = 300_000;
    println!("\n== Monte-Carlo validation (n = 100, Δ = 2, T = {rounds}) ==");
    let row = convergence::validate(&small, rounds, 42)?;
    println!(
        "convergence opportunities: measured {} vs E[C] = {:.1} (Eq. 26, rel err {:.2}%)",
        row.measured_convergence,
        row.expected_convergence,
        100.0 * row.convergence_rel_error()
    );
    println!(
        "adversary blocks:          measured {} vs E[A] = {:.1} (Eq. 27, rel err {:.2}%)",
        row.measured_adversary,
        row.expected_adversary,
        100.0 * row.adversary_rel_error()
    );
    println!(
        "suffix chain occupancy:    max |empirical − Eq. 37| = {:.5}",
        row.suffix_max_abs_error()
    );
    Ok(())
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "consistent"
    } else {
        "NOT guaranteed"
    }
}
