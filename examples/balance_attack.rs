//! The PSS-style balance attack (Remark 8.5's intuition): split the
//! honest miners into two groups, delay all cross-group traffic by the
//! full Δ, and spend adversarial blocks keeping both branches level.
//! While the adversary's budget keeps up, the two groups' chains
//! diverge without bound.
//!
//! Run with: `cargo run --release --example balance_attack`

use blockchain_consistency::nakamoto_sim::adversary::BalanceAdversary;
use blockchain_consistency::nakamoto_sim::config::SimConfig;
use blockchain_consistency::nakamoto_sim::execution::run_simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 100u64;
    let rounds = 150_000u64;

    println!("Balance attack: two honest groups, cross-group delay = Δ, T = {rounds}\n");
    println!(
        "{:>4} {:>6} {:>14} {:>10} {:>10} {:>16}",
        "Δ", "ν", "divergence", "height_0", "height_1", "consistent(T=12)"
    );

    for &delta in &[2u64, 4, 8] {
        for &nu in &[0.10, 0.25, 0.40] {
            // Slow chain relative to Δ: c = 1 means one block per Δ-delay.
            let cfg = SimConfig::from_c(
                n,
                delta,
                1.0,
                nu,
                31_337 + delta * 100 + (nu * 100.0) as u64,
            )?;
            let report = run_simulation(cfg, Box::new(BalanceAdversary::new(delta)), rounds);
            println!(
                "{:>4} {:>6.2} {:>14} {:>10} {:>10} {:>16}",
                delta,
                nu,
                report.max_divergence_depth,
                report.group_heights[0],
                report.group_heights[1],
                report.is_consistent(12),
            );
        }
    }
    println!("\nReading: divergence depth grows with ν at fixed Δ — the attack's");
    println!("balancing budget is the adversary's block rate, exactly the A-side");
    println!("of the paper's Lemma 1 race.");
    Ok(())
}
