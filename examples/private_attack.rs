//! Demonstrates the consistency attack the paper's Figure 1 red line
//! describes: a private-chain adversary with maximal message delays
//! breaks `T`-consistency once its fraction `ν` crosses the attack
//! threshold, while parameters satisfying the paper's bound stay safe.
//!
//! Run with: `cargo run --release --example private_attack`

use blockchain_consistency::consistency_core::{numax, pss};
use blockchain_consistency::nakamoto_sim::adversary::PrivateChainAdversary;
use blockchain_consistency::nakamoto_sim::config::SimConfig;
use blockchain_consistency::nakamoto_sim::execution::run_simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small-Δ simulation scale (see DESIGN.md §3 for why this validates
    // the same code paths as the paper's Δ = 1e13 analytic curves).
    let n = 100u64;
    let delta = 4u64;
    let c = 1.0;
    let rounds = 200_000u64;

    println!("Private-chain attack sweep: n = {n}, Δ = {delta}, c = {c}, T = {rounds}");
    println!(
        "paper ν_max(c) = {:.4}, PSS attack threshold = {:.4}\n",
        numax::nu_max_for_c(c)?,
        pss::attack_nu_threshold(c)
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10} {:>14}",
        "ν", "reorgs", "max_reorg", "C−A", "quality", "consistent(T=12)"
    );

    for &nu in &[0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45] {
        let cfg = SimConfig::from_c(n, delta, c, nu, 7_000 + (nu * 1000.0) as u64)?;
        let report = run_simulation(cfg, Box::new(PrivateChainAdversary::new(delta)), rounds);
        println!(
            "{:>6.2} {:>12} {:>12} {:>12} {:>10.4} {:>14}",
            nu,
            report.reorg_count,
            report.max_reorg_depth,
            report.convergence_margin(),
            report.chain_quality(),
            report.is_consistent(12),
        );
    }

    println!("\nReading: the convergence margin C − A (Lemma 1's currency) shrinks");
    println!("as ν grows; deep reorgs appear once the adversary can keep a private");
    println!("lead, and T-consistency fails well before ν reaches 1/2.");
    Ok(())
}
