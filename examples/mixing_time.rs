//! Explores the suffix chain `C_F` numerically: stationary distribution
//! (closed form vs. GTH vs. power iteration), mixing time, and Kac
//! return times for the `HN^{≥Δ}` state — the machinery behind the
//! paper's Inequality (47).
//!
//! Run with: `cargo run --release --example mixing_time`

use blockchain_consistency::consistency_core::suffix_chain;
use blockchain_consistency::markov::{hitting, mixing, stationary, structure};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>5} {:>8} {:>10} {:>12} {:>12} {:>14}",
        "Δ", "α", "states", "τ(1/8)", "π(long gap)", "return time"
    );
    for &delta in &[1u64, 2, 4, 8, 16] {
        for &alpha in &[0.05f64, 0.2] {
            let chain = suffix_chain::build_chain(alpha, delta)?;
            assert!(structure::is_ergodic(&chain));
            let pi = stationary::stationary_gth(&chain)?;
            // Cross-check the closed form.
            let closed = suffix_chain::closed_form_stationary(alpha, delta)?;
            let max_err = pi
                .iter()
                .zip(closed.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(max_err < 1e-12, "closed form diverged: {max_err}");

            let tau = mixing::mixing_time(&chain, &pi, 0.125, 2_000_000)?;
            let long_gap = delta as usize; // index of HN^{≥Δ}
            let ret = hitting::expected_return_time(&chain, long_gap)?;
            // Kac: return time = 1/π.
            assert!((ret - 1.0 / pi[long_gap]).abs() < 1e-6 * ret);
            println!(
                "{:>5} {:>8.2} {:>10} {:>12} {:>12.5e} {:>14.2}",
                delta,
                alpha,
                chain.n_states(),
                tau,
                pi[long_gap],
                ret
            );
        }
    }
    println!("\nKac's formula (return time = 1/π) validated at every row; the");
    println!("1/8-mixing times feed Inequality (47)'s concentration bound.");
    Ok(())
}
