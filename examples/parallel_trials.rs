//! Demonstrates the parallel Monte-Carlo engine: the same experiment as
//! `private_attack`, but as a fan-out of independent trials with a 95%
//! Wilson interval on the T-consistency failure rate — and results that
//! are bit-identical no matter how many worker threads run it.
//!
//! Run with: `cargo run --release --example parallel_trials`

use blockchain_consistency::consistency_core::numax;
use blockchain_consistency::nakamoto_sim::adversary::PrivateChainAdversary;
use blockchain_consistency::nakamoto_sim::config::SimConfig;
use blockchain_consistency::nakamoto_sim::montecarlo::TrialPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 100u64;
    let delta = 4u64;
    let c = 1.0;
    let rounds = 50_000u64;
    let trials = 8u64;
    let t_consistency = 12u64;

    println!("Parallel private-chain trials: n = {n}, Δ = {delta}, c = {c}");
    println!(
        "{trials} trials × {rounds} rounds per ν; paper ν_max(c) = {:.4}\n",
        numax::nu_max_for_c(c)?
    );
    println!(
        "{:>6} {:>10} {:>24} {:>14} {:>12}",
        "ν", "max_reorg", "P[¬12-cons] (95% CI)", "rounds/sec", "threads"
    );
    for &nu in &[0.1, 0.2, 0.3, 0.4, 0.45] {
        let cfg = SimConfig::from_c(n, delta, c, nu, 2020)?;
        let plan = TrialPlan::new(cfg, rounds, trials)?.thresholds(vec![t_consistency]);
        let run = plan.run(move |_| PrivateChainAdversary::new(delta));
        let wilson = run
            .aggregate
            .failure_interval(t_consistency, 1.96)
            .expect("threshold requested");
        println!(
            "{:>6.2} {:>10} {:>24} {:>14.0} {:>12}",
            nu,
            run.aggregate.max_reorg_depth,
            format!(
                "{:.2} [{:.2}, {:.2}]",
                wilson.estimate, wilson.lo, wilson.hi
            ),
            run.rounds_per_sec,
            run.threads,
        );
    }
    println!("\nDeterminism: rerunning with any thread count reproduces these");
    println!("numbers bit-for-bit — per-trial RNG streams come from jump() on");
    println!("the master seed, and the reduction is ordered by trial index.");
    Ok(())
}
