//! Confirmation-depth analysis: how many blocks deep a transaction must
//! be before the private-chain race is lost with high probability —
//! connecting the paper's consistency parameter `T` to Nakamoto's
//! catch-up random walk.
//!
//! Run with: `cargo run --release --example confirmation_depth`

use blockchain_consistency::consistency_core::catchup;
use blockchain_consistency::consistency_core::params::ProtocolParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Catch-up probability (q/(1−q))^z, closed form vs absorbing-chain solver\n");
    println!(
        "{:>6} {:>4} {:>16} {:>16} {:>12}",
        "q", "z", "closed form", "markov (h=80)", "|diff|"
    );
    for &q in &[0.1, 0.25, 0.4] {
        for &z in &[1u32, 2, 4, 8] {
            let closed = catchup::catchup_probability(q, z)?;
            let markov = catchup::catchup_probability_markov(q, z, z + 80)?;
            println!(
                "{q:>6} {z:>4} {closed:>16.6e} {markov:>16.6e} {:>12.1e}",
                (closed - markov).abs()
            );
        }
    }

    println!("\nConfirmations needed for a given double-spend risk:");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "q", "risk 1e-2", "risk 1e-4", "risk 1e-8"
    );
    for &q in &[0.05, 0.1, 0.2, 0.3, 0.4, 0.45] {
        println!(
            "{q:>6} {:>12} {:>12} {:>12}",
            catchup::confirmations_for_risk(q, 1e-2)?,
            catchup::confirmations_for_risk(q, 1e-4)?,
            catchup::confirmations_for_risk(q, 1e-8)?,
        );
    }

    println!("\nEffective adversary share in the Δ-delay race (pνn vs ᾱ^{{2Δ}}α₁):");
    println!(
        "{:>6} {:>8} {:>18} {:>14}",
        "ν", "c", "effective share q", "race winnable"
    );
    for &nu in &[0.2, 0.3, 0.4] {
        let neat = blockchain_consistency::consistency_core::theorem2::neat_bound(nu);
        for &factor in &[0.5, 1.0, 2.0, 4.0] {
            let params = ProtocolParams::from_c(1_000, 8, neat * factor, nu)?;
            match catchup::effective_adversary_share(&params) {
                Some(q) => println!(
                    "{nu:>6} {:>8.3} {q:>18.4} {:>14}",
                    neat * factor,
                    if q < 0.5 { "yes (q < 1/2)" } else { "NO" }
                ),
                None => println!("{nu:>6} {:>8.3} {:>18} {:>14}", neat * factor, "→ 1", "NO"),
            }
        }
    }
    println!("\nAt c below the paper's bound the effective share crosses 1/2 and no");
    println!("confirmation depth is safe — exactly the consistency failure the");
    println!("theorems rule out above the bound.");
    Ok(())
}
