//! Regenerates Figure 1 of the paper: the maximum tolerable adversarial
//! fraction `ν_max` against `c = 1/(pnΔ)` for this paper's bound
//! (magenta), PSS consistency (blue) and the PSS attack (red).
//!
//! Run with: `cargo run --example figure1 [n_points]`
//! The output is a TSV table plus a coarse ASCII rendering.

use blockchain_consistency::consistency_core::figure1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_points: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(33);

    let points = figure1::generate(n_points)?;
    print!("{}", figure1::to_table(&points));

    // Coarse ASCII plot: rows are ν from 0.5 down to 0, columns follow
    // the log-c grid. `o` = ours, `b` = PSS consistency, `a` = attack.
    println!("\nASCII rendering (x: log c in [0.1, 100], y: ν in [0, 0.5])");
    let height = 20usize;
    for row in (0..=height).rev() {
        let nu = 0.5 * row as f64 / height as f64;
        let mut line = String::with_capacity(points.len());
        for p in &points {
            let near = |v: f64| (v - nu).abs() <= 0.25 / height as f64;
            let ch = if near(p.pss_attack) {
                'a'
            } else if near(p.ours) {
                'o'
            } else if near(p.pss_consistency) && p.pss_consistency > 0.0 {
                'b'
            } else {
                ' '
            };
            line.push(ch);
        }
        println!("{nu:4.2} |{line}");
    }
    println!("      {}", "-".repeat(n_points));
    println!("      c=0.1 … log-spaced … c=100");
    println!(
        "\nLegend: o = this paper (magenta), b = PSS consistency (blue), a = PSS attack (red)"
    );
    Ok(())
}
