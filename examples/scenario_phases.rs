//! Demonstrates the time-varying scenario layer: one continuous run
//! through a calm warm-up, an eclipse-plus-private-chain attack window
//! with a hash-power surge, and a calm recovery — with a per-phase
//! breakdown showing where the consistency damage happens.
//!
//! Run with: `cargo run --release --example scenario_phases`

use blockchain_consistency::nakamoto_sim::config::SimConfig;
use blockchain_consistency::nakamoto_sim::scenario::{
    run_scenario, PhaseSpec, Regime, Scenario, ScenarioPlan, StrategyKind,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = SimConfig::from_c(100, 4, 1.0, 0.1, 2026)?;
    let rounds = 50_000u64;
    let scenario = Scenario::new(
        base,
        vec![
            PhaseSpec::new(rounds, StrategyKind::Honest, Regime::Calm),
            PhaseSpec::new(
                rounds,
                StrategyKind::PrivateChain,
                Regime::Eclipse { group: 1 },
            )
            .with_power(0.4),
            PhaseSpec::new(rounds, StrategyKind::Honest, Regime::Calm),
        ],
    )?;

    println!("Scenario: calm (ν = 0.1) → eclipse(group 1) + private chain (ν = 0.4) → calm");
    println!("n = 100, Δ = 4, c = 1, {rounds} rounds per phase\n");
    println!(
        "{:>7} {:>9} {:>10} {:>8} {:>8} {:>11} {:>12}",
        "phase", "honest", "adversary", "conv", "reorgs", "cum_reorg≤", "cum_diverg≤"
    );
    let report = run_scenario(&scenario);
    for (i, p) in report.phase_reports.iter().enumerate() {
        println!(
            "{:>7} {:>9} {:>10} {:>8} {:>8} {:>11} {:>12}",
            i,
            p.honest_blocks,
            p.adversary_blocks,
            p.convergence_opportunities,
            p.reorg_count,
            p.cumulative_max_reorg_depth,
            p.cumulative_max_divergence_depth,
        );
    }

    // The same scenario as a Monte-Carlo fan-out: failure rate of
    // 12-consistency with a 95% Wilson interval, bit-identical at any
    // thread count.
    let run = ScenarioPlan::new(scenario, 8)?.thresholds(vec![12]).run();
    let wilson = run
        .aggregate
        .failure_interval(12, 1.96)
        .expect("threshold requested");
    println!(
        "\n8 trials: P[¬12-consistent] = {:.2} [{:.2}, {:.2}] at {:.0} rounds/s on {} threads",
        wilson.estimate, wilson.lo, wilson.hi, run.rounds_per_sec, run.threads,
    );
    println!("\nThe attack window concentrates adversary blocks and depth growth in");
    println!("phase 1; the recovery phase mines clean. The per-trial streams are");
    println!("jump()-derived from the base seed, so any thread count reproduces this.");
    Ok(())
}
